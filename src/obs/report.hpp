#pragma once
// RunReport: derives the survey's headline numbers from an event stream.
//
// Harada, Alba & Luque argue that distributed GAs must be compared on
// wall/virtual-time event series rather than generation counts; this
// aggregator turns an obs::EventLog into exactly those numbers:
//
//   * per-rank busy time and utilization against the virtual makespan
//     (CPU spans — "compute" and "send" — are busy; everything else on a
//     lane is idle/comm)
//   * comm/compute ratio — the overhead term in every speedup model
//   * message and byte totals per rank and overall
//   * migration counts per (source, dest) edge
//   * node failures with their timestamps (Gagné's fault-tolerance audit)
//   * time-to-fitness / takeover time from the gen_stats series
//
// Utilization convention: only CPU spans (obs::is_cpu_span — "compute" and
// the simulator's "send" overhead) count as busy, so a master rank that
// blocks in recv shows the low utilization the bottleneck analysis predicts
// instead of being hidden inside an umbrella span.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/checkpoints.hpp"
#include "obs/events.hpp"

namespace pga::obs {

/// Per-rank usage derived from the event stream.
struct RankUsage {
  double busy_s = 0.0;  ///< total time inside outermost CPU spans
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t evaluations = 0;     ///< summed evaluation_batch counts
  std::uint64_t migrations_out = 0;  ///< migration packets emitted
  std::uint64_t migrants_out = 0;    ///< individuals in those packets
  bool failed = false;
  double fail_t = std::numeric_limits<double>::infinity();
  double last_t = 0.0;  ///< rank's final event timestamp

  [[nodiscard]] double utilization(double makespan) const noexcept {
    return makespan > 0.0 ? busy_s / makespan : 0.0;
  }
};

/// One gen_stats sample, retained so convergence/takeover questions can be
/// asked after the fact.
struct FitnessSample {
  double t = 0.0;
  int rank = 0;
  std::uint64_t generation = 0;
  std::uint64_t evaluations = 0;
  double best = 0.0;
};

/// One search_stats sample (obs/probes.hpp payload), retained so the
/// Giacobini/Cantú-Paz-shaped curves can be re-plotted from any trace.
struct SearchSample {
  double t = 0.0;
  int rank = 0;
  std::uint64_t generation = 0;
  std::uint64_t gen_evals = 0;  ///< evaluations this generation performed
  double diversity = 0.0;
  double spread = 0.0;
  double entropy = 0.0;
  double intensity = 0.0;
  double takeover = 0.0;
  /// Checkpoint-fair payload (0 on pre-checkpoint traces): this rank's best
  /// fitness and cumulative per-rank evaluations at `t`.
  double best = 0.0;
  std::uint64_t cum_evals = 0;
};

class RunReport {
 public:
  /// Builds the report from a log (events are re-sorted by virtual time, so
  /// append order across ranks does not matter).  Gathered via for_each —
  /// one copy, not the snapshot()+sort double copy of sorted_by_time().
  [[nodiscard]] static RunReport from(const EventLog& log) {
    std::vector<Event> events;
    log.for_each([&](const Event& e) { events.push_back(e); });
    std::stable_sort(events.begin(), events.end(), canonical_event_order);
    return RunReport(std::move(events));
  }

  /// Builds from an explicit, already time-sorted event sequence.
  [[nodiscard]] static RunReport from(std::vector<Event> sorted_events) {
    return RunReport(std::move(sorted_events));
  }

  [[nodiscard]] double makespan() const noexcept { return makespan_; }
  [[nodiscard]] const std::vector<RankUsage>& ranks() const noexcept {
    return ranks_;
  }
  [[nodiscard]] std::size_t num_ranks() const noexcept {
    return ranks_.size();
  }

  [[nodiscard]] double total_busy() const noexcept {
    double s = 0.0;
    for (const auto& r : ranks_) s += r.busy_s;
    return s;
  }

  /// Mean utilization: aggregate busy time over ranks * makespan.
  [[nodiscard]] double mean_utilization() const noexcept {
    const double denom =
        makespan_ * static_cast<double>(ranks_.size());
    return denom > 0.0 ? total_busy() / denom : 0.0;
  }

  /// Non-compute (communication + idle) time over compute time, the overhead
  /// ratio that bounds speedup in every model of the survey.  Degenerate
  /// streams (empty log, zero makespan, no compute spans) report 0 rather
  /// than inf/NaN so downstream tables stay finite.
  [[nodiscard]] double comm_compute_ratio() const noexcept {
    const double busy = total_busy();
    const double total = makespan_ * static_cast<double>(ranks_.size());
    return busy > 0.0 && total > 0.0 ? (total - busy) / busy : 0.0;
  }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.messages_sent;
    return n;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.bytes_sent;
    return n;
  }
  [[nodiscard]] std::uint64_t total_evaluations() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.evaluations;
    return n;
  }
  [[nodiscard]] std::uint64_t total_migrations() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.migrations_out;
    return n;
  }
  [[nodiscard]] std::size_t failures() const noexcept {
    std::size_t n = 0;
    for (const auto& r : ranks_) n += r.failed;
    return n;
  }

  /// Migration packets per (source deme, dest deme) edge.
  [[nodiscard]] const std::map<std::pair<int, int>, std::uint64_t>&
  migration_edges() const noexcept {
    return migration_edges_;
  }

  /// Instant markers by label ("dispatch", "re_dispatch", ...).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& marks()
      const noexcept {
    return marks_;
  }

  /// Best fitness over all ranks' gen_stats series at any time.
  [[nodiscard]] double final_best() const noexcept { return final_best_; }

  /// Earliest virtual time at which any rank's gen_stats best reached
  /// `target` — the takeover / time-to-solution measure (+inf if never).
  [[nodiscard]] double time_to_fitness(double target) const noexcept {
    for (const auto& s : fitness_series_)  // sorted by time
      if (s.best >= target) return s.t;
    return std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] const std::vector<FitnessSample>& fitness_series()
      const noexcept {
    return fitness_series_;
  }

  /// Per-generation search-dynamics samples in virtual-time order.
  [[nodiscard]] const std::vector<SearchSample>& search_series()
      const noexcept {
    return search_series_;
  }

  /// Summed per-generation evaluation counts from search_stats events over
  /// the makespan — the probe-derived evaluation throughput (0 when no
  /// probes ran or the makespan is degenerate).
  [[nodiscard]] double eval_throughput() const noexcept {
    if (makespan_ <= 0.0) return 0.0;
    std::uint64_t evals = 0;
    for (const auto& s : search_series_) evals += s.gen_evals;
    return static_cast<double>(evals) / makespan_;
  }

  /// Checkpoint-fair quality-vs-effort curves (Harada-Alba-Luque) rebuilt
  /// from the retained gen_stats/search_stats series — per-rank best-so-far
  /// quality from both, per-rank effort from checkpoint-format search
  /// samples with gen_stats totals as the no-probe fallback.  Feed two of
  /// these to obs::compare_speedup for the honest-speedup comparison.
  [[nodiscard]] QualityEffort quality_effort() const {
    QualityEffort::Builder b;
    for (const auto& s : fitness_series_) {
      b.quality_sample(s.rank, s.t, s.best);
      b.effort_hint(s.rank, s.t, s.evaluations);
    }
    std::map<int, std::uint64_t> running;
    for (const auto& s : search_series_) {
      auto& cum = running[s.rank];
      cum += s.gen_evals;
      const std::uint64_t evals =
          s.cum_evals > 0 ? std::max(s.cum_evals, cum) : cum;
      if (evals > 0) b.effort_sample(s.rank, s.t, evals);
      if (s.cum_evals > 0) b.quality_sample(s.rank, s.t, s.best);
    }
    return std::move(b).build();
  }

  /// Markdown-ish per-rank summary for experiment harness stdout.
  [[nodiscard]] std::string to_string() const {
    std::ostringstream out;
    out.precision(6);
    out << "RunReport: makespan " << makespan_ << " s, mean utilization "
        << mean_utilization() << ", comm/compute " << comm_compute_ratio()
        << ", " << total_messages() << " msgs, " << total_bytes()
        << " bytes, " << total_migrations() << " migrations, " << failures()
        << " failures\n";
    out << "| rank | busy (s) | util | msgs out | bytes out | evals | "
           "migrations | failed |\n";
    out << "|------|----------|------|----------|-----------|-------|"
           "------------|--------|\n";
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const auto& u = ranks_[r];
      out << "| " << r << " | " << u.busy_s << " | "
          << u.utilization(makespan_) << " | " << u.messages_sent << " | "
          << u.bytes_sent << " | " << u.evaluations << " | "
          << u.migrations_out << " | " << (u.failed ? "yes" : "no")
          << " |\n";
    }
    return out.str();
  }

 private:
  explicit RunReport(std::vector<Event> events) {
    int max_rank = -1;
    for (const auto& e : events) max_rank = std::max(max_rank, e.rank);
    ranks_.resize(static_cast<std::size_t>(max_rank + 1));

    // Per-rank nesting depth of CPU spans and the open timestamp, so
    // re-entrant compute spans are not double counted.
    std::vector<int> depth(ranks_.size(), 0);
    std::vector<double> open_t(ranks_.size(), 0.0);

    for (const auto& e : events) {
      auto& u = ranks_[static_cast<std::size_t>(e.rank)];
      makespan_ = std::max(makespan_, e.t);
      u.last_t = std::max(u.last_t, e.t);
      const auto r = static_cast<std::size_t>(e.rank);
      switch (e.kind) {
        case EventKind::kSpanBegin:
          if (is_cpu_span(e.name) && depth[r]++ == 0) open_t[r] = e.t;
          break;
        case EventKind::kSpanEnd:
          if (is_cpu_span(e.name) && depth[r] > 0 && --depth[r] == 0)
            u.busy_s += e.t - open_t[r];
          break;
        case EventKind::kMessageSent:
          ++u.messages_sent;
          u.bytes_sent += e.count;
          break;
        case EventKind::kMessageRecv:
          ++u.messages_recv;
          u.bytes_recv += e.count;
          break;
        case EventKind::kMigration:
          ++u.migrations_out;
          u.migrants_out += e.count;
          ++migration_edges_[{e.rank, e.peer}];
          break;
        case EventKind::kEvaluationBatch:
          u.evaluations += e.count;
          break;
        case EventKind::kNodeFailure:
          u.failed = true;
          u.fail_t = std::min(u.fail_t, e.t);
          break;
        case EventKind::kGenStats: {
          FitnessSample s;
          s.t = e.t;
          s.rank = e.rank;
          s.generation = e.generation;
          s.evaluations = e.evaluations;
          s.best = e.best;
          fitness_series_.push_back(s);
          final_best_ = std::max(final_best_, e.best);
          break;
        }
        case EventKind::kSearchStats: {
          SearchSample s;
          s.t = e.t;
          s.rank = e.rank;
          s.generation = e.generation;
          s.gen_evals = e.count;
          s.diversity = e.diversity;
          s.spread = e.spread;
          s.entropy = e.entropy;
          s.intensity = e.intensity;
          s.takeover = e.takeover;
          s.best = e.best;
          s.cum_evals = e.evaluations;
          search_series_.push_back(s);
          break;
        }
        case EventKind::kMark:
          ++marks_[e.name];
          break;
        case EventKind::kAsyncDispatch:
        case EventKind::kAsyncComplete:
          // Engine-thread bookkeeping; evaluations are counted by the
          // kEvaluationBatch events the pool lanes emit.
          break;
        case EventKind::kTaskRun:
        case EventKind::kSteal:
        case EventKind::kLanePark:
          // Executor telemetry — aggregated by obs::SchedulerReport, not the
          // rank-level run report.
          break;
      }
    }

    // A span left open (e.g. the rank died mid-compute and the end event
    // never fired) is charged through the makespan.
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      if (depth[r] > 0) ranks_[r].busy_s += makespan_ - open_t[r];
  }

  std::vector<RankUsage> ranks_;
  double makespan_ = 0.0;
  double final_best_ = -std::numeric_limits<double>::infinity();
  std::map<std::pair<int, int>, std::uint64_t> migration_edges_;
  std::map<std::string, std::uint64_t> marks_;
  std::vector<FitnessSample> fitness_series_;
  std::vector<SearchSample> search_series_;
};

}  // namespace pga::obs
