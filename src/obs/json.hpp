#pragma once
// Minimal JSON value parser (recursive descent, no dependencies).
//
// The obs subsystem both writes JSON (chrome_trace.hpp, event_json.hpp) and
// reads it back (pga_doctor loads trace dumps; tests round-trip exported
// documents to prove escaping is correct).  This is a small, strict parser
// for those two jobs — it builds a value tree and rejects structurally
// broken documents; it does not aim at full RFC 8259 conformance (no
// surrogate-pair decoding: \uXXXX escapes are validated and preserved
// verbatim, which is lossless for the ASCII event names the library emits).

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace pga::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value.  Objects keep first-wins semantics on duplicate keys.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const {
    static const Array empty;
    return array_ ? *array_ : empty;
  }
  [[nodiscard]] const Object& as_object() const {
    static const Object empty;
    return object_ ? *object_ : empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
  }

  /// Convenience accessors with defaults for the doctor's tolerant reads.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const {
    const Value* v = find(key);
    return v && v->is_number() ? v->as_number() : dflt;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& dflt) const {
    const Value* v = find(key);
    return v && v->is_string() ? v->as_string() : dflt;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  [[nodiscard]] Value parse() {
    skip_ws();
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  Value value() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't': literal("true"); return Value(true);
      case 'f': literal("false"); return Value(false);
      case 'n': literal("null"); return Value();
      default: return Value(number());
    }
  }

  Value object() {
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after key");
      ++pos_;
      skip_ws();
      out.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      skip_ws();
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) fail("truncated escape");
        const char e = s_[pos_];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (pos_ >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
                fail("bad \\u escape");
              const char h = s_[pos_];
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (h | 0x20) - 'a' + 10);
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              // Preserve non-ASCII escapes verbatim; the library only ever
              // emits ASCII \u00XX control escapes, so this path is for
              // foreign documents the doctor merely passes through.
              out += "\\u";
              out += s_.substr(pos_ - 3, 4);
            }
            break;
          }
          default: fail("unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t from = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      return pos_ > from;
    };
    if (!digits()) fail("expected number");
    if (peek() == '.') {
      ++pos_;
      if (!digits()) fail("expected fraction digits");
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) fail("expected exponent digits");
    }
    // strtod, not stod: stod throws std::out_of_range on overflow ("1e999"),
    // which escapes try_parse (it only catches runtime_error) and turns a
    // merely-huge number into a crash.  strtod saturates to ±inf/0, which is
    // the tolerant behaviour a diagnosis tool wants.
    const std::string token = s_.substr(start, pos_ - start);
    return std::strtod(token.c_str(), nullptr);
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete document; throws std::runtime_error on any error.
[[nodiscard]] inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

/// Non-throwing variant for validity checks.
[[nodiscard]] inline std::optional<Value> try_parse(const std::string& text) {
  try {
    return parse(text);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace pga::obs::json
