#pragma once
// Causal analysis over an EventLog: message correlation, the critical path,
// and makespan attribution.
//
// The survey's performance claims are causal claims.  Cantú-Paz's optimal
// slave count and Alba & Troya's LAN/WAN island results are statements about
// *which dependency chain bounds the makespan* — computation, or the
// send→recv edges between ranks.  Aggregate ratios (report.hpp) can say a
// run spent 60% of rank-seconds off-CPU; only a causal walk can say the
// makespan itself was bounded by communication, and show the chain.
//
// The substrate is the per-run `msg_id` the transports stamp on every send
// (comm/transport.hpp): a kMessageSent (or, for in-process engines, a
// kMigration) and the events observing that message's arrival (kMessageRecv,
// "migrants_integrated"/"result" marks) share the id, giving the causal DAG
// its cross-rank edges.  Program order within a rank gives the rest.
//
// The critical path is recovered by a backward walk from the last event,
// producing one non-overlapping timeline (its segments never sum past the
// makespan).  Within a rank, closed "compute" spans are compute and closed
// "send" spans are comm (per-message CPU handling — Cantú-Paz's Tc); a gap
// that ends at a correlated arrival is comm-latency back to the send
// timestamp, after which the walk jumps to the sender, whose own chain
// explains the receiver's pre-send wait.  Stretches of that wait the sender
// leaves unexplained are charged to the receiver as blocked-waiting; gaps
// outside any wait window are idle.  This matches the simulator's semantics
// exactly — SimCluster's fire() advances a blocked receiver's clock to the
// message arrival — and degrades gracefully on wall-clock traces, where
// uncorrelated gaps surface as idle.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/events.hpp"

namespace pga::obs {

/// What one stretch of the critical path was spent on.
enum class SegmentKind : std::uint8_t {
  kCompute,      ///< inside a closed "compute" span on the path rank
  /// A correlated message was in flight toward the path rank, or the rank
  /// was burning CPU on per-message handling (a "send" span).
  kCommLatency,
  /// The receiver sat waiting for a sender that was neither computing nor
  /// sending — wait time the sender's own chain leaves unexplained.
  kBlockedWait,
  kIdle,  ///< nothing on the rank explains the time
};

[[nodiscard]] constexpr const char* to_string(SegmentKind k) noexcept {
  switch (k) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kCommLatency: return "comm-latency";
    case SegmentKind::kBlockedWait: return "blocked-wait";
    case SegmentKind::kIdle: return "idle";
  }
  return "?";
}

/// One stretch of the critical path, charged to `rank` over [t_begin, t_end].
/// Comm segments carry the sender (`from_rank`) and the message id.
struct PathSegment {
  SegmentKind kind = SegmentKind::kIdle;
  int rank = 0;
  int from_rank = -1;
  double t_begin = 0.0;
  double t_end = 0.0;
  const char* label = "";
  std::uint64_t msg_id = 0;

  [[nodiscard]] double duration() const noexcept { return t_end - t_begin; }
};

/// send↔arrival bookkeeping quality for a log — the acceptance check that
/// "every recv carries a msg_id matching exactly one send".
struct Correlation {
  std::size_t sends = 0;     ///< distinct message ids with a send event
  std::size_t arrivals = 0;  ///< recv/arrival events carrying a msg_id
  std::size_t matched = 0;   ///< arrivals whose id has exactly one send
  std::vector<std::uint64_t> unmatched;           ///< arrival ids with no send
  std::vector<std::uint64_t> duplicate_send_ids;  ///< id on >1 send event

  [[nodiscard]] bool fully_correlated() const noexcept {
    return matched == arrivals && unmatched.empty() &&
           duplicate_send_ids.empty();
  }
};

/// Makespan attribution along the critical path.
struct CriticalPathReport {
  double makespan = 0.0;  ///< last event time − first event time
  double compute_s = 0.0;
  double comm_s = 0.0;
  double blocked_s = 0.0;
  double idle_s = 0.0;
  /// Path segments in chronological order (walk output reversed).
  std::vector<PathSegment> segments;
  struct RankShare {
    double compute_s = 0.0;
    double comm_s = 0.0;
    double blocked_s = 0.0;
    double idle_s = 0.0;
    [[nodiscard]] double total() const noexcept {
      return compute_s + comm_s + blocked_s + idle_s;
    }
  };
  /// Path time charged to each rank (receiver side for comm segments).
  std::map<int, RankShare> per_rank;

  [[nodiscard]] double path_total() const noexcept {
    return compute_s + comm_s + blocked_s + idle_s;
  }
  /// Fraction of the makespan bound by communication (in-flight + waiting
  /// for the sender).  The "comm-bound" doctor verdict gates on this.
  [[nodiscard]] double comm_fraction() const noexcept {
    return makespan > 0.0 ? (comm_s + blocked_s) / makespan : 0.0;
  }
  [[nodiscard]] double compute_fraction() const noexcept {
    return makespan > 0.0 ? compute_s / makespan : 0.0;
  }
  /// The dominant edge class along the path.
  [[nodiscard]] SegmentKind dominant() const noexcept {
    SegmentKind k = SegmentKind::kCompute;
    double best = compute_s;
    if (comm_s > best) { best = comm_s; k = SegmentKind::kCommLatency; }
    if (blocked_s > best) { best = blocked_s; k = SegmentKind::kBlockedWait; }
    if (idle_s > best) { k = SegmentKind::kIdle; }
    return k;
  }

  /// Human-readable report: attribution totals, per-rank breakdown, and the
  /// dominant chain — the last `top_k` hops of the path, newest last, which
  /// is the evidence behind a comm-bound/compute-bound verdict.
  [[nodiscard]] std::string to_string(std::size_t top_k = 12) const {
    std::ostringstream out;
    out << std::fixed << std::setprecision(6);
    auto pct = [&](double s) {
      return makespan > 0.0 ? 100.0 * s / makespan : 0.0;
    };
    out << "critical path: makespan " << makespan << " s, "
        << segments.size() << " path segments across " << per_rank.size()
        << " rank(s)\n";
    out << std::setprecision(6)
        << "  attribution: compute " << compute_s << " s ("
        << std::setprecision(1) << pct(compute_s) << "%)"
        << std::setprecision(6) << " | comm-latency " << comm_s << " s ("
        << std::setprecision(1) << pct(comm_s) << "%)"
        << std::setprecision(6) << " | blocked-wait " << blocked_s << " s ("
        << std::setprecision(1) << pct(blocked_s) << "%)"
        << std::setprecision(6) << " | idle " << idle_s << " s ("
        << std::setprecision(1) << pct(idle_s) << "%)\n";
    out << "  dominant: " << obs::to_string(dominant())
        << " (comm+wait = " << std::setprecision(1)
        << 100.0 * comm_fraction() << "% of makespan)\n";
    out << "  per-rank path time:\n" << std::setprecision(6);
    for (const auto& [rank, share] : per_rank) {
      out << "    rank " << std::setw(3) << rank << ": total "
          << share.total() << " s  (compute " << share.compute_s << ", comm "
          << share.comm_s << ", wait " << share.blocked_s << ", idle "
          << share.idle_s << ")\n";
    }
    out << "  dominant chain (last " << std::min(top_k, segments.size())
        << " of " << segments.size() << " hops, oldest first):\n";
    const std::size_t lo =
        segments.size() > top_k ? segments.size() - top_k : 0;
    for (std::size_t i = lo; i < segments.size(); ++i) {
      const auto& s = segments[i];
      out << "    [rank " << s.rank << "] " << obs::to_string(s.kind);
      if ((s.kind == SegmentKind::kCommLatency ||
           s.kind == SegmentKind::kBlockedWait) &&
          s.msg_id != 0) {
        out << " <- rank " << s.from_rank << " msg#" << s.msg_id;
      } else if (s.label && s.label[0] != '\0') {
        out << " '" << s.label << "'";
      }
      out << "  " << s.t_begin << " .. " << s.t_end << "  (+" << s.duration()
          << " s)\n";
    }
    return out.str();
  }
};

/// The causal DAG of a log: events in canonical time order, per-rank program
/// order, and send→arrival message edges keyed by msg_id.
class CausalGraph {
 public:
  [[nodiscard]] static CausalGraph from(const EventLog& log) {
    return CausalGraph(log.sorted_by_time());
  }
  explicit CausalGraph(std::vector<Event> sorted) : events_(std::move(sorted)) {
    for (std::size_t i = 0; i < events_.size(); ++i)
      by_rank_[events_[i].rank].push_back(i);

    // First pass: the send side of each id.  A transport-level kMessageSent
    // is authoritative; a kMigration with the same id is the engine-level
    // view of the same send (distributed islands emit both), so kMigration
    // only *defines* the send when no kMessageSent carries the id — which is
    // how in-process engines (sequential islands, hierarchical) join the
    // graph without a transport.
    std::unordered_map<std::uint64_t, std::size_t> migration_send;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      if (e.msg_id == 0) continue;
      if (e.kind == EventKind::kMessageSent) {
        auto [it, inserted] = send_of_.emplace(e.msg_id, i);
        if (!inserted) correlation_.duplicate_send_ids.push_back(e.msg_id);
      } else if (e.kind == EventKind::kMigration) {
        auto [it, inserted] = migration_send.emplace(e.msg_id, i);
        if (!inserted) correlation_.duplicate_send_ids.push_back(e.msg_id);
      } else if (e.kind == EventKind::kMessageRecv) {
        recv_ids_.insert(e.msg_id);
      }
    }
    for (const auto& [id, i] : migration_send) send_of_.emplace(id, i);
    correlation_.sends = send_of_.size();

    // Second pass: arrivals.  kMessageRecv always; a kMark only when it is
    // the *first* observer of the id on a rank other than the sender's (so
    // same-rank "dispatch" marks and post-recv "result" marks don't double
    // up as arrivals).
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      if (e.msg_id == 0) continue;
      const bool is_recv = e.kind == EventKind::kMessageRecv;
      const bool is_arrival_mark =
          e.kind == EventKind::kMark && recv_ids_.count(e.msg_id) == 0 &&
          arrival_of_.count(e.msg_id) == 0 && sender_rank_of(e.msg_id) >= 0 &&
          sender_rank_of(e.msg_id) != e.rank;
      if (!is_recv && !is_arrival_mark) continue;
      ++correlation_.arrivals;
      auto it = send_of_.find(e.msg_id);
      if (it == send_of_.end()) {
        correlation_.unmatched.push_back(e.msg_id);
      } else {
        ++correlation_.matched;
        arrival_of_.emplace(e.msg_id, i);
        message_edges_.emplace_back(it->second, i);
      }
    }
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  /// (send index, arrival index) pairs into events().
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  message_edges() const noexcept {
    return message_edges_;
  }
  [[nodiscard]] const Correlation& correlation() const noexcept {
    return correlation_;
  }

  /// Walks the longest dependency chain backward from the last event and
  /// attributes the makespan.  Linear in path length; safe on truncated or
  /// partially-correlated logs (unexplained time degrades to idle).
  [[nodiscard]] CriticalPathReport critical_path() const {
    CriticalPathReport report;
    if (events_.empty()) return report;
    const double t_start = events_.front().t;
    report.makespan = events_.back().t - t_start;

    std::vector<PathSegment> path;  // built newest-first, reversed at the end
    auto push = [&](PathSegment s) {
      if (s.t_end > s.t_begin) path.push_back(s);
    };

    int rank = events_.back().rank;
    double cur_t = events_.back().t;

    // Active wait window: after jumping from an arrival to its sender, the
    // receiver's pre-send wait [lo, hi] is explained by whatever the sender
    // chain covers; gaps inside the window are the receiver blocked on an
    // unproductive sender, gaps outside it are plain idle.
    struct WaitWindow {
      bool active = false;
      int receiver = -1;
      std::uint64_t msg_id = 0;
      double lo = 0.0, hi = 0.0;
    } wait;

    // Attribute a gap [lo, hi] on `on_rank`, splitting against the active
    // wait window (pushes are newest-first like the rest of the walk).
    auto push_gap = [&](int on_rank, double lo, double hi) {
      if (hi <= lo) return;
      const double mid_hi = wait.active ? std::min(hi, wait.hi) : lo;
      const double mid_lo = wait.active ? std::max(lo, wait.lo) : lo;
      if (!wait.active || mid_hi <= mid_lo) {
        push({SegmentKind::kIdle, on_rank, -1, lo, hi, "", 0});
        return;
      }
      push({SegmentKind::kIdle, on_rank, -1, mid_hi, hi, "", 0});
      push({SegmentKind::kBlockedWait, wait.receiver, on_rank, mid_lo, mid_hi,
            "", wait.msg_id});
      push({SegmentKind::kIdle, on_rank, -1, lo, mid_lo, "", 0});
    };
    auto rank_pos = [&](int r, double t) -> std::ptrdiff_t {
      auto it = by_rank_.find(r);
      if (it == by_rank_.end()) return -1;
      const auto& lst = it->second;
      // Latest event on r with t <= cur_t.
      std::ptrdiff_t lo = 0, hi = static_cast<std::ptrdiff_t>(lst.size()) - 1,
                     ans = -1;
      while (lo <= hi) {
        const std::ptrdiff_t mid = (lo + hi) / 2;
        if (events_[lst[static_cast<std::size_t>(mid)]].t <= t) {
          ans = mid;
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
      return ans;
    };
    std::ptrdiff_t idx = rank_pos(rank, cur_t);

    // Every iteration either decrements an index or consumes a message edge,
    // so 2·|events| iterations bound any walk; the cap is a safety net for
    // malformed logs (e.g. a hand-written cycle of equal timestamps).
    std::size_t steps_left = 2 * events_.size() + 16;
    while (idx >= 0 && steps_left-- > 0) {
      if (wait.active && cur_t <= wait.lo) wait.active = false;
      const auto& lst = by_rank_.at(rank);
      const Event& e = events_[lst[static_cast<std::size_t>(idx)]];
      if (e.t > cur_t) {
        --idx;
        continue;
      }

      // Correlated arrival: the stretch back to the send timestamp is
      // in-flight comm; the pre-send wait becomes the active wait window and
      // the walk jumps to the sender, whose chain explains that window.
      auto arr = arrival_of_.find(e.msg_id);
      if (e.msg_id != 0 && arr != arrival_of_.end() &&
          arr->second == lst[static_cast<std::size_t>(idx)]) {
        const Event& send = events_[send_of_.at(e.msg_id)];
        if (send.t <= e.t && send.rank != rank) {
          push_gap(rank, e.t, cur_t);  // unexplained time after the arrival
          const double gap_lo =
              idx > 0
                  ? std::min(events_[lst[static_cast<std::size_t>(idx - 1)]].t,
                             e.t)
                  : e.t;
          // The full flight [send.t, e.t] is comm: after the jump the walk
          // continues strictly below send.t, so even when the receiver was
          // busy with other work past send.t (gap_lo > send.t) the flight
          // interval is unclaimed and the timeline stays gap-free.
          push({SegmentKind::kCommLatency, rank, send.rank, send.t, e.t, "",
                e.msg_id});
          if (gap_lo < send.t)
            wait = {true, rank, e.msg_id, gap_lo, send.t};
          rank = send.rank;
          cur_t = send.t;
          idx = rank_pos(rank, cur_t);
          continue;
        }
      }

      if (e.kind == EventKind::kSpanEnd) {
        // Find the matching begin (same name, balanced nesting).
        std::ptrdiff_t j = idx - 1;
        int depth = 0;
        while (j >= 0) {
          const Event& f = events_[lst[static_cast<std::size_t>(j)]];
          if (f.kind == EventKind::kSpanEnd &&
              std::string_view(f.name) == e.name) {
            ++depth;
          } else if (f.kind == EventKind::kSpanBegin &&
                     std::string_view(f.name) == e.name) {
            if (depth == 0) break;
            --depth;
          }
          --j;
        }
        if (j >= 0) {
          const Event& b = events_[lst[static_cast<std::size_t>(j)]];
          push_gap(rank, e.t, cur_t);
          // "send" spans are CPU burned on per-message handling — the s·Tc
          // term of the master-slave model — and count as communication.
          const SegmentKind kind = std::string_view(e.name) == "send"
                                       ? SegmentKind::kCommLatency
                                       : SegmentKind::kCompute;
          push({kind, rank, -1, b.t, std::min(e.t, cur_t), e.name, 0});
          cur_t = b.t;
          idx = j - 1;
          continue;
        }
      }

      --idx;  // other events don't explain time; keep scanning backward
    }

    // Whatever precedes the walk's horizon is one trailing gap, so the
    // attribution approaches the makespan instead of silently stopping
    // where the chain ran out of history.
    push_gap(rank, t_start, cur_t);

    std::reverse(path.begin(), path.end());
    for (const auto& s : path) {
      auto& share = report.per_rank[s.rank];
      switch (s.kind) {
        case SegmentKind::kCompute:
          report.compute_s += s.duration();
          share.compute_s += s.duration();
          break;
        case SegmentKind::kCommLatency:
          report.comm_s += s.duration();
          share.comm_s += s.duration();
          break;
        case SegmentKind::kBlockedWait:
          report.blocked_s += s.duration();
          share.blocked_s += s.duration();
          break;
        case SegmentKind::kIdle:
          report.idle_s += s.duration();
          share.idle_s += s.duration();
          break;
      }
    }
    report.segments = std::move(path);
    return report;
  }

 private:
  [[nodiscard]] int sender_rank_of(std::uint64_t id) const {
    auto it = send_of_.find(id);
    return it == send_of_.end() ? -1 : events_[it->second].rank;
  }

  std::vector<Event> events_;
  std::map<int, std::vector<std::size_t>> by_rank_;
  std::unordered_map<std::uint64_t, std::size_t> send_of_;
  std::unordered_map<std::uint64_t, std::size_t> arrival_of_;
  std::unordered_set<std::uint64_t> recv_ids_;
  std::vector<std::pair<std::size_t, std::size_t>> message_edges_;
  Correlation correlation_;
};

/// Convenience: the full pipeline for one log.
[[nodiscard]] inline CriticalPathReport critical_path(const EventLog& log) {
  return CausalGraph::from(log).critical_path();
}

/// Convenience: the correlation audit for one log.
[[nodiscard]] inline Correlation audit_correlation(const EventLog& log) {
  return CausalGraph::from(log).correlation();
}

}  // namespace pga::obs
