#pragma once
// Scheduler introspection: where the executor's time actually goes.
//
// The survey's efficiency questions bottom out in the execution backend:
// when W1/Q1 report a speedup far below the lane count, the missing factor
// hides in scheduling — lanes that never receive work, steal sweeps that
// find nothing, tasks finer than the cost of moving them, or an async
// in-flight window so small the producer stalls while lanes idle.  PR 8's
// engine-level telemetry cannot see any of that; this header reads the
// executor events PR 9 added (kTaskRun / kSteal / kLanePark, plus the
// window-occupancy payloads on kAsyncDispatch/kAsyncComplete and the
// engine's "window_wait" spans) and answers with evidence:
//
//   * SchedulerReport — tiles each lane's timeline into run / steal / park /
//     idle seconds (per-lane tiles sum to the makespan exactly), the
//     lane×lane steal matrix, the task-grain histogram, and the async
//     window-occupancy curve with the producer-blocked fraction.
//   * sched_verdicts — evidence-backed diagnoses on top of the report:
//     starved-lane, steal-storm, grain-too-fine, window-stall, emitted as
//     obs::Anomaly records so pga_doctor's --fail-on machinery composes.
//
// Verdicts are evidence-positive: a trace with no executor events produces
// no scheduler verdicts (the report is simply empty), so the gates can run
// over any trace — including pre-instrumentation ones — without false
// alarms.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/events.hpp"

namespace pga::obs {

/// Per-lane timeline tiling.  run/steal/park come straight from the event
/// payloads (integer nanoseconds, so they survive JSON round-trips exactly);
/// idle is the residual to the makespan, clamped at zero — by construction
/// run + steal + park + idle == makespan for every lane (the invariant
/// test_sched asserts).
struct LaneTiles {
  int rank = 0;
  double run = 0.0;    ///< seconds inside task bodies (kTaskRun spans)
  double steal = 0.0;  ///< seconds inside steal sweeps, successful or not
  double park = 0.0;   ///< seconds blocked on the wake cv (kLanePark spans)
  double idle = 0.0;   ///< makespan residual (out of parallel regions, ...)
  double first_t = 0.0;  ///< earliest executor activity on this lane
  double last_t = 0.0;   ///< latest executor activity on this lane
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;          ///< successful sweeps (peer >= 0)
  std::uint64_t steal_failures = 0;  ///< full sweeps that found nothing
  std::uint64_t parks = 0;
};

/// One point of the async in-flight window occupancy curve (taken from the
/// `peer` payload of kAsyncDispatch/kAsyncComplete events; dispatches record
/// occupancy after the dispatch, completes after the fold).
struct WindowSample {
  double t = 0.0;
  int occupancy = 0;
};

/// Scheduler view of one trace.  Built by SchedulerReport::from; plain data
/// so tests can compare reports (e.g. in-memory log vs JSONL rebuild)
/// field-by-field.
struct SchedulerReport {
  double makespan = 0.0;  ///< max event timestamp over the *whole* trace

  std::vector<LaneTiles> lanes;  ///< ranks with executor events, ascending
  /// lanes²: [thief_index * lanes.size() + victim_index], successful steals
  /// only.  Row sums equal the corresponding lane's `steals` (asserted by
  /// test_sched).  A robbed lane joins the lane set even when it emitted no
  /// executor event of its own — a caller that only posts detached tasks
  /// runs nothing itself, yet every steal in the trace names it as victim.
  std::vector<std::uint64_t> steal_matrix;

  /// Task spans in nanoseconds, ascending — the grain histogram's raw data.
  std::vector<std::uint64_t> task_spans_ns;
  /// log2 histogram of task spans: bucket b counts spans in [2^b, 2^(b+1)).
  std::vector<std::uint64_t> grain_hist = std::vector<std::uint64_t>(64, 0);

  std::vector<WindowSample> window_curve;  ///< canonical event order
  int max_occupancy = 0;  ///< peak of the curve (0 when no window events)
  double producer_blocked = 0.0;  ///< total "window_wait" seconds, all ranks
  int producer_rank = -1;  ///< rank with the largest blocked share (-1 none)

  [[nodiscard]] bool has_lane_events() const noexcept {
    return !lanes.empty();
  }
  [[nodiscard]] bool has_window_events() const noexcept {
    return !window_curve.empty();
  }

  [[nodiscard]] std::uint64_t total_tasks() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.tasks;
    return n;
  }
  [[nodiscard]] std::uint64_t total_steals() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.steals;
    return n;
  }
  [[nodiscard]] std::uint64_t total_steal_failures() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.steal_failures;
    return n;
  }

  [[nodiscard]] std::size_t lane_index(int rank) const noexcept {
    for (std::size_t i = 0; i < lanes.size(); ++i)
      if (lanes[i].rank == rank) return i;
    return lanes.size();
  }
  [[nodiscard]] std::uint64_t stolen(std::size_t thief,
                                     std::size_t victim) const noexcept {
    const std::size_t n = lanes.size();
    if (thief >= n || victim >= n) return 0;
    return steal_matrix[thief * n + victim];
  }

  /// Successful steals robbing lane `victim` — its steal-matrix column sum.
  [[nodiscard]] std::uint64_t fed_from(std::size_t victim) const noexcept {
    std::uint64_t n = 0;
    for (std::size_t thief = 0; thief < lanes.size(); ++thief)
      n += stolen(thief, victim);
    return n;
  }

  /// A producer lane hands off more work than it runs: other lanes steal
  /// from its deque more often than it executes tasks itself.  That is the
  /// async engine's caller lane (detached posts queue there; the thread
  /// spends its time staging/folding batches as the engine rank, invisible
  /// to its lane identity) — so lane-utilisation verdicts must not read its
  /// near-zero run fraction as starvation or idleness.
  [[nodiscard]] bool is_producer_lane(std::size_t i) const noexcept {
    return i < lanes.size() && fed_from(i) > lanes[i].tasks;
  }

  /// Lanes that consume work (not producer lanes).
  [[nodiscard]] std::size_t consumer_lanes() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < lanes.size(); ++i)
      if (!is_producer_lane(i)) ++n;
    return n;
  }

  /// Quantile over task spans (q in [0,1]; nearest-rank on the sorted data).
  [[nodiscard]] std::uint64_t task_span_quantile_ns(double q) const noexcept {
    if (task_spans_ns.empty()) return 0;
    const double pos = q * static_cast<double>(task_spans_ns.size() - 1);
    std::size_t i = static_cast<std::size_t>(pos + 0.5);
    if (i >= task_spans_ns.size()) i = task_spans_ns.size() - 1;
    return task_spans_ns[i];
  }
  [[nodiscard]] std::uint64_t median_task_span_ns() const noexcept {
    return task_span_quantile_ns(0.5);
  }

  /// Scheduling overhead charged per task: the part of each lane's *active*
  /// window ([first_t, last_t]) spent neither running tasks nor sweeping nor
  /// parked — deque traffic, wakeups, emission — divided by the task count.
  /// This is the yardstick the grain-too-fine verdict holds the median task
  /// span against.
  [[nodiscard]] double overhead_per_task() const noexcept {
    const std::uint64_t tasks = total_tasks();
    if (tasks == 0) return 0.0;
    double overhead = 0.0;
    for (const auto& l : lanes) {
      const double active = l.last_t - l.first_t;
      const double accounted = l.run + l.steal + l.park;
      if (active > accounted) overhead += active - accounted;
    }
    return overhead / static_cast<double>(tasks);
  }

  [[nodiscard]] double producer_blocked_fraction() const noexcept {
    return makespan > 0.0 ? producer_blocked / makespan : 0.0;
  }
  /// Mean run fraction across lanes — "were the lanes busy?" for the
  /// window-stall verdict.
  [[nodiscard]] double mean_lane_run_fraction() const noexcept {
    if (lanes.empty() || makespan <= 0.0) return 0.0;
    double sum = 0.0;
    for (const auto& l : lanes) sum += l.run / makespan;
    return sum / static_cast<double>(lanes.size());
  }

  /// Builds the report from events in canonical (t, rank, seq) order —
  /// required so "window_wait" begin/end pairs and the occupancy curve read
  /// in timeline order.  Use the EventLog overload unless you already hold a
  /// sorted snapshot.
  [[nodiscard]] static SchedulerReport from(const std::vector<Event>& events) {
    SchedulerReport r;
    // rank -> accumulating tiles, in nanoseconds to defer rounding.
    struct LaneAcc {
      std::uint64_t run_ns = 0, steal_ns = 0, park_ns = 0;
      double first_t = 0.0, last_t = 0.0;
      bool seen = false;
      std::uint64_t tasks = 0, steals = 0, steal_failures = 0, parks = 0;
      std::map<int, std::uint64_t> stolen_from;  ///< victim rank -> count
    };
    std::map<int, LaneAcc> acc;
    std::map<int, double> window_wait_open;  ///< rank -> begin t
    std::map<int, double> blocked_by_rank;
    auto touch = [](LaneAcc& l, double begin, double end) {
      if (!l.seen || begin < l.first_t) l.first_t = begin;
      if (!l.seen || end > l.last_t) l.last_t = end;
      l.seen = true;
    };
    for (const Event& e : events) {
      r.makespan = std::max(r.makespan, e.t);
      switch (e.kind) {
        case EventKind::kTaskRun: {
          LaneAcc& l = acc[e.rank];
          l.run_ns += e.count;
          ++l.tasks;
          touch(l, e.t - static_cast<double>(e.count) * 1e-9, e.t);
          r.task_spans_ns.push_back(e.count);
          std::uint64_t span = e.count;
          std::size_t b = 0;
          while (span > 1 && b + 1 < r.grain_hist.size()) {
            span >>= 1;
            ++b;
          }
          ++r.grain_hist[b];
          break;
        }
        case EventKind::kSteal: {
          LaneAcc& l = acc[e.rank];
          l.steal_ns += e.count;
          touch(l, e.t - static_cast<double>(e.count) * 1e-9, e.t);
          if (e.peer >= 0) {
            ++l.steals;
            ++l.stolen_from[e.peer];
            // Materialize the victim lane: a detached-task caller may never
            // run/steal/park itself, but it must still appear in the lane
            // set for the steal-matrix row-sum invariant to hold.
            acc[e.peer];
          } else {
            ++l.steal_failures;
          }
          break;
        }
        case EventKind::kLanePark: {
          LaneAcc& l = acc[e.rank];
          l.park_ns += e.count;
          ++l.parks;
          touch(l, e.t - static_cast<double>(e.count) * 1e-9, e.t);
          break;
        }
        case EventKind::kAsyncDispatch:
        case EventKind::kAsyncComplete:
          if (e.peer >= 0) {
            r.window_curve.push_back({e.t, e.peer});
            r.max_occupancy = std::max(r.max_occupancy, e.peer);
          }
          break;
        case EventKind::kSpanBegin:
          if (std::string_view(e.name) == "window_wait")
            window_wait_open[e.rank] = e.t;
          break;
        case EventKind::kSpanEnd:
          if (std::string_view(e.name) == "window_wait") {
            auto it = window_wait_open.find(e.rank);
            if (it != window_wait_open.end()) {
              const double d = e.t - it->second;
              if (d > 0.0) {
                r.producer_blocked += d;
                blocked_by_rank[e.rank] += d;
              }
              window_wait_open.erase(it);
            }
          }
          break;
        default:
          break;
      }
    }
    // A window_wait still open at end of trace is charged to the makespan.
    for (const auto& [rank, begin] : window_wait_open) {
      const double d = r.makespan - begin;
      if (d > 0.0) {
        r.producer_blocked += d;
        blocked_by_rank[rank] += d;
      }
    }
    double worst_blocked = 0.0;
    for (const auto& [rank, d] : blocked_by_rank)
      if (d > worst_blocked) {
        worst_blocked = d;
        r.producer_rank = rank;
      }
    // Materialize lane tiles (std::map iteration = ascending rank).  Clock
    // jitter can push run+steal+park a hair past the makespan; scale the
    // measured tiles down proportionally so idle >= 0 and the per-lane sum
    // equals the makespan *exactly* — the invariant downstream asserts.
    for (const auto& [rank, a] : acc) {
      LaneTiles l;
      l.rank = rank;
      l.run = static_cast<double>(a.run_ns) * 1e-9;
      l.steal = static_cast<double>(a.steal_ns) * 1e-9;
      l.park = static_cast<double>(a.park_ns) * 1e-9;
      l.first_t = a.first_t;
      l.last_t = a.last_t;
      l.tasks = a.tasks;
      l.steals = a.steals;
      l.steal_failures = a.steal_failures;
      l.parks = a.parks;
      const double measured = l.run + l.steal + l.park;
      if (measured > r.makespan && measured > 0.0) {
        const double scale = r.makespan / measured;
        l.run *= scale;
        l.steal *= scale;
        l.park *= scale;
      }
      l.idle = r.makespan - l.run - l.steal - l.park;
      if (l.idle < 0.0) l.idle = 0.0;  // fp dust from the scale above
      r.lanes.push_back(l);
    }
    const std::size_t n = r.lanes.size();
    r.steal_matrix.assign(n * n, 0);
    for (std::size_t thief = 0; thief < n; ++thief) {
      const auto& a = acc.at(r.lanes[thief].rank);
      for (const auto& [victim_rank, cnt] : a.stolen_from) {
        const std::size_t victim = r.lane_index(victim_rank);
        if (victim < n) r.steal_matrix[thief * n + victim] += cnt;
      }
    }
    std::sort(r.task_spans_ns.begin(), r.task_spans_ns.end());
    return r;
  }

  [[nodiscard]] static SchedulerReport from(const EventLog& log) {
    return from(log.sorted_by_time());
  }
};

/// Thresholds for sched_verdicts.  Each verdict also has an evidence floor
/// so sparse traces cannot trip it.
struct SchedVerdictConfig {
  /// starved-lane: run fraction below ratio × the sibling median.
  double starved_ratio = 0.25;
  /// starved-lane evidence floor: total tasks across lanes.
  std::uint64_t starved_min_tasks = 16;
  /// steal-storm: failures per success above this.
  double storm_failure_ratio = 3.0;
  /// steal-storm evidence floor: failed sweeps observed.
  std::uint64_t storm_min_failures = 64;
  /// grain-too-fine: median task span <= ratio × per-task overhead.
  double grain_ratio = 1.0;
  /// grain-too-fine evidence floor: tasks observed.
  std::uint64_t grain_min_tasks = 256;
  /// window-stall: producer blocked fraction at or above this ...
  double window_blocked_floor = 0.25;
  /// ... while the mean consumer-lane run fraction is at or below this ...
  double window_lane_busy_ceiling = 0.5;
  /// ... and the observed peak occupancy is below this multiple of the
  /// consumer-lane count.  When every consumer lane could hold a batch
  /// simultaneously (peak >= lanes), the window is not what idles them —
  /// the producer is backpressured by eval throughput, and growing
  /// max_in_flight would change nothing.
  double window_occupancy_lane_ratio = 1.0;
};

/// Evidence-backed scheduler diagnoses over a report.  Emits obs::Anomaly
/// records (kinds kStarvedLane / kStealStorm / kGrainTooFine / kWindowStall)
/// so pga_doctor's --fail-on machinery composes unchanged.
[[nodiscard]] inline std::vector<Anomaly> sched_verdicts(
    const SchedulerReport& r, SchedVerdictConfig cfg = {}) {
  std::vector<Anomaly> out;
  std::ostringstream d;
  d.precision(4);

  // starved-lane: a lane's run fraction far below its siblings'.
  if (r.lanes.size() >= 2 && r.makespan > 0.0 &&
      r.total_tasks() >= cfg.starved_min_tasks) {
    std::vector<double> utils;
    utils.reserve(r.lanes.size());
    for (const auto& l : r.lanes) utils.push_back(l.run / r.makespan);
    std::vector<double> sorted = utils;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    if (median > 0.0) {
      for (std::size_t i = 0; i < r.lanes.size(); ++i) {
        if (utils[i] >= cfg.starved_ratio * median) continue;
        // A producer lane's near-zero run fraction is its job, not a
        // symptom: its thread works as the async engine rank while other
        // lanes drain its deque.
        if (r.is_producer_lane(i)) continue;
        Anomaly a;
        a.kind = AnomalyKind::kStarvedLane;
        a.rank = r.lanes[i].rank;
        a.t_begin = 0.0;
        a.t_end = r.makespan;
        a.value = utils[i];
        d.str("");
        d << "run fraction " << utils[i] << " vs sibling median " << median
          << " (" << r.lanes[i].tasks << " tasks; loop shape never feeds "
          << "this lane)";
        a.detail = d.str();
        out.push_back(std::move(a));
      }
    }
  }

  // steal-storm: sweeps overwhelmingly find nothing.
  {
    const std::uint64_t ok = r.total_steals();
    const std::uint64_t fail = r.total_steal_failures();
    if (fail >= cfg.storm_min_failures) {
      const double ratio =
          static_cast<double>(fail) / static_cast<double>(ok > 0 ? ok : 1);
      if (ratio >= cfg.storm_failure_ratio) {
        Anomaly a;
        a.kind = AnomalyKind::kStealStorm;
        a.rank = -1;
        a.t_begin = 0.0;
        a.t_end = r.makespan;
        a.value = ratio;
        d.str("");
        d << fail << " failed sweeps vs " << ok << " successful steals "
          << "(ratio " << ratio << "; too few chunks for the lane count)";
        a.detail = d.str();
        out.push_back(std::move(a));
      }
    }
  }

  // grain-too-fine: tasks cost more to move than to run.
  if (r.total_tasks() >= cfg.grain_min_tasks) {
    const double median_s =
        static_cast<double>(r.median_task_span_ns()) * 1e-9;
    const double overhead = r.overhead_per_task();
    if (overhead > 0.0 && median_s <= cfg.grain_ratio * overhead) {
      Anomaly a;
      a.kind = AnomalyKind::kGrainTooFine;
      a.rank = -1;
      a.t_begin = 0.0;
      a.t_end = r.makespan;
      a.value = overhead > 0.0 ? median_s / overhead : 0.0;
      d.str("");
      d << "median task span " << median_s * 1e6 << " us <= per-task "
        << "scheduling overhead " << overhead * 1e6 << " us over "
        << r.total_tasks() << " tasks (raise the grain)";
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  // window-stall: producer blocked on a too-small window while consumer
  // lanes idle.  All three evidence legs must agree: the producer waits, the
  // consumers are not busy, and the observed peak occupancy is too low for
  // every consumer to hold a batch — otherwise the blocking is eval
  // throughput (consumers saturated or the runner oversubscribed), and
  // growing max_in_flight would change nothing.
  if (r.has_window_events() && r.producer_blocked > 0.0) {
    const double blocked = r.producer_blocked_fraction();
    double busy = 0.0;
    std::size_t consumers = 0;
    for (std::size_t i = 0; i < r.lanes.size(); ++i) {
      if (r.is_producer_lane(i)) continue;
      ++consumers;
      if (r.makespan > 0.0) busy += r.lanes[i].run / r.makespan;
    }
    if (consumers > 0) busy /= static_cast<double>(consumers);
    const bool window_small =
        static_cast<double>(r.max_occupancy) <
        cfg.window_occupancy_lane_ratio * static_cast<double>(consumers);
    if (window_small && blocked >= cfg.window_blocked_floor &&
        busy <= cfg.window_lane_busy_ceiling) {
      Anomaly a;
      a.kind = AnomalyKind::kWindowStall;
      a.rank = r.producer_rank;
      a.t_begin = 0.0;
      a.t_end = r.makespan;
      a.value = blocked;
      d.str("");
      d << "producer blocked on the in-flight window " << blocked * 100.0
        << "% of the makespan while mean consumer-lane run fraction is "
        << busy << " (peak occupancy " << r.max_occupancy << " below "
        << consumers << " consumer lanes; grow max_in_flight)";
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  return out;
}

}  // namespace pga::obs
