#pragma once
// Streaming trace export: incremental JSONL with tail-follow reading.
//
// The post-hoc formats (event_json.hpp, chrome_trace.hpp) write one closed
// document after the run ends — useless for a long-running daemon whose
// trace never "finishes".  The stream format is line-delimited instead:
//
//   {"format":"pga-event-stream-v1"}        <- header, rewritten per rotation
//   {"kind":"span_begin", ...}              <- one event_json object per line
//   ...
//
// so a consumer can follow the file while the producer is still appending,
// and a crash loses at most the unflushed tail — every complete line is a
// valid record on its own.
//
// StreamWriter emit-path cost: `append` takes a short mutex and copies the
// 136-byte Event into a staging buffer — the same shape as EventLog::append,
// which is how the O1 bench's "within 2× of in-memory append" criterion is
// met.  JSON encoding and file IO happen on a background flusher thread
// (or synchronously via `flush()`), never at the emit call site.  The
// staging buffer is bounded: when the flusher cannot keep up, further
// events are counted in `dropped_backpressure` and discarded rather than
// growing memory without bound.
//
// StreamReader is deliberately dumb and robust: poll-based (no inotify
// dependency), tolerant of a half-written final line (kept pending until
// the rest arrives), and of size-based rotation (file shrank -> start over
// at offset 0; the moment mid-rename where the path is missing reads as
// "no data yet").  Parse failures are counted and skipped, never fatal —
// a monitor must survive a corrupt line from a dying producer.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/event_json.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"

namespace pga::obs {

inline constexpr const char kEventStreamHeader[] =
    "{\"format\":\"pga-event-stream-v1\"}";

struct StreamWriterConfig {
  /// Rotate when the current file exceeds this many bytes (0 = never).
  /// On rotation the file is renamed to `<path>.1` (replacing any previous
  /// `.1`) and a fresh file with a new header is started — so disk usage is
  /// bounded by ~2x rotate_bytes.
  std::uint64_t rotate_bytes = 0;
  /// Staging-buffer bound (events).  Appends beyond this while the flusher
  /// is behind are dropped and counted in `dropped_backpressure`.
  std::size_t max_pending = 1 << 16;
  /// Background flusher wakeup period.  Lower = fresher tail for a live
  /// consumer; the flusher also wakes as soon as the staging buffer is half
  /// full.
  std::chrono::milliseconds flush_interval{50};
  /// Run the background flusher thread.  Off = events stage in memory until
  /// an explicit flush()/close() — useful in tests and single-threaded
  /// tools that want deterministic flush points.
  bool background_flush = true;
};

class StreamWriter final : public EventSink {
 public:
  explicit StreamWriter(std::string path, StreamWriterConfig cfg = {})
      : path_(std::move(path)), cfg_(cfg) {
    out_ = std::fopen(path_.c_str(), "wb");
    if (!out_) throw std::runtime_error("cannot open " + path_ + " for writing");
    write_header();
    if (cfg_.background_flush)
      flusher_ = std::thread([this] { flusher_main(); });
  }

  ~StreamWriter() override { close(); }
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  void append(Event e) override {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      if (pending_.size() >= cfg_.max_pending) {
        ++dropped_backpressure_;
        return;
      }
      e.seq = next_seq_++;
      pending_.push_back(e);
      wake = cfg_.background_flush && pending_.size() >= cfg_.max_pending / 2;
    }
    if (wake) cv_.notify_one();
  }

  /// Synchronously encodes and writes everything staged so far.
  void flush() {
    std::vector<Event> batch;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch.swap(pending_);
    }
    write_batch(batch);
  }

  /// Stops the flusher, drains the staging buffer, and closes the file.
  /// Idempotent; called by the destructor.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    cv_.notify_one();
    if (flusher_.joinable()) flusher_.join();
    flush();
    std::lock_guard<std::mutex> io(io_mutex_);
    if (out_) {
      std::fclose(out_);
      out_ = nullptr;
    }
  }

  struct Stats {
    std::uint64_t appended = 0;  ///< events accepted into the staging buffer
    std::uint64_t written = 0;   ///< events encoded and written to the file
    std::uint64_t dropped_backpressure = 0;  ///< staging buffer was full
    std::uint64_t rotations = 0;
    std::uint64_t bytes_written = 0;  ///< across all rotations
  };

  [[nodiscard]] Stats stats() const {
    Stats s;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      s.appended = next_seq_;
      s.dropped_backpressure = dropped_backpressure_;
    }
    std::lock_guard<std::mutex> io(io_mutex_);
    s.written = written_;
    s.rotations = rotations_;
    s.bytes_written = bytes_total_;
    return s;
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_header() {
    std::fputs(kEventStreamHeader, out_);
    std::fputc('\n', out_);
    bytes_current_ = sizeof(kEventStreamHeader);  // incl. '\n' (repl. NUL)
    bytes_total_ += bytes_current_;
  }

  /// Encodes and writes one drained batch; rotates afterwards if the file
  /// outgrew the bound.  Only the flusher thread and flush()/close() (which
  /// serialize on io_mutex_) enter here, so stdio state is single-writer.
  void write_batch(const std::vector<Event>& batch) {
    if (batch.empty()) return;
    std::string text;
    text.reserve(batch.size() * 256);
    for (const Event& e : batch) {
      text += event_json(e);
      text += '\n';
    }
    std::lock_guard<std::mutex> io(io_mutex_);
    if (!out_) return;
    std::fwrite(text.data(), 1, text.size(), out_);
    std::fflush(out_);
    written_ += batch.size();
    bytes_current_ += text.size();
    bytes_total_ += text.size();
    if (cfg_.rotate_bytes > 0 && bytes_current_ > cfg_.rotate_bytes) rotate();
  }

  void rotate() {
    std::fclose(out_);
    const std::string old = path_ + ".1";
    std::remove(old.c_str());
    std::rename(path_.c_str(), old.c_str());
    out_ = std::fopen(path_.c_str(), "wb");
    if (!out_) return;  // keep staging; stats expose the stall via written_
    ++rotations_;
    std::fputs(kEventStreamHeader, out_);
    std::fputc('\n', out_);
    bytes_current_ = sizeof(kEventStreamHeader);
    bytes_total_ += bytes_current_;
    std::fflush(out_);
  }

  void flusher_main() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, cfg_.flush_interval, [this] {
        return closed_ || pending_.size() >= cfg_.max_pending / 2;
      });
      if (closed_) return;  // close() drains after joining us
      std::vector<Event> batch;
      batch.swap(pending_);
      lock.unlock();
      write_batch(batch);
      lock.lock();
    }
  }

  std::string path_;
  StreamWriterConfig cfg_;

  mutable std::mutex mutex_;  ///< staging buffer + counters
  std::condition_variable cv_;
  std::vector<Event> pending_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_backpressure_ = 0;
  bool closed_ = false;

  mutable std::mutex io_mutex_;  ///< stdio handle + file-side counters
  std::FILE* out_ = nullptr;
  std::uint64_t written_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t bytes_current_ = 0;
  std::uint64_t bytes_total_ = 0;

  std::thread flusher_;
};

/// Tail-follow reader for the stream format.  Single-threaded, poll-driven:
/// each poll() parses whatever complete lines appeared since the last call.
class StreamReader {
 public:
  explicit StreamReader(std::string path) : path_(std::move(path)) {}

  struct Stats {
    std::uint64_t events = 0;        ///< successfully parsed event lines
    std::uint64_t parse_errors = 0;  ///< lines skipped as unparseable
    std::uint64_t rotations = 0;     ///< shrink-detected restarts
    std::uint64_t bytes = 0;         ///< bytes consumed (current file)
  };

  /// Reads newly appended complete lines and invokes `on_event(const Event&)`
  /// for each event record.  Returns the number of events delivered this
  /// call.  A missing file (including the instant mid-rotation) or a
  /// half-written final line is not an error — the partial tail stays
  /// buffered until a later poll completes it.
  template <typename Fn>
  std::size_t poll(Fn&& on_event) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return 0;
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0) return 0;
    auto size = static_cast<std::uint64_t>(end);
    if (size < offset_) {
      // File shrank: the writer rotated underneath us.  Anything we had
      // pending belonged to the renamed file and its line boundary is gone.
      offset_ = 0;
      pending_.clear();
      ++stats_.rotations;
    }
    if (size == offset_) return 0;
    in.seekg(static_cast<std::streamoff>(offset_));
    std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<std::uint64_t>(in.gcount());
    chunk.resize(static_cast<std::size_t>(got));
    offset_ += got;
    stats_.bytes = offset_;
    pending_ += chunk;

    std::size_t delivered = 0;
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending_.find('\n', start);
      if (nl == std::string::npos) break;
      deliver_line(pending_.substr(start, nl - start), on_event, delivered);
      start = nl + 1;
    }
    pending_.erase(0, start);
    return delivered;
  }

  /// Convenience: poll into a vector.
  [[nodiscard]] std::vector<Event> poll_events() {
    std::vector<Event> out;
    poll([&](const Event& e) { out.push_back(e); });
    return out;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True if a partial (not yet newline-terminated) line is buffered.
  [[nodiscard]] bool has_partial_line() const noexcept {
    return !pending_.empty();
  }

 private:
  template <typename Fn>
  void deliver_line(const std::string& line, Fn& on_event,
                    std::size_t& delivered) {
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos)
      return;
    try {
      const json::Value v = json::parse(line);
      if (v.is_object() && v.find("format")) {
        // Header line; a rotation rewrites it, so just validate and move on.
        if (v.string_or("format", "") != "pga-event-stream-v1")
          ++stats_.parse_errors;
        return;
      }
      on_event(event_from_json(v));
      ++stats_.events;
      ++delivered;
    } catch (const std::exception&) {
      ++stats_.parse_errors;
    }
  }

  std::string path_;
  std::uint64_t offset_ = 0;
  std::string pending_;
  Stats stats_;
};

}  // namespace pga::obs
