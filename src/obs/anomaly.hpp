#pragma once
// Streaming anomaly diagnosis over the obs event stream.
//
// Lobo et al.'s massive-parallelization architecture argues that model-level
// statistics are what make large fleets debuggable: nobody hand-reads a
// 64-rank trace.  The detector consumes the same event stream the exporters
// and RunReport read — online, one consume() per event in any order — and
// at finish() reports the failure signatures the survey's experiments
// produce, each with rank + virtual-timestamp evidence:
//
//   * failed ranks    — kNodeFailure events (E9's injected deaths)
//   * stalled ranks   — a rank silent for the trailing `stall_fraction` of
//                       the makespan while the run continued without it
//   * premature convergence — a rank's genotypic diversity collapsed below
//                       `diversity_floor` *before* its best fitness
//                       plateaued: the search lost its raw material while it
//                       still had progress to make (needs kSearchStats from
//                       obs/probes.hpp)
//   * stragglers      — per-rank utilization outliers: busy fraction below
//                       `straggler_ratio` x the median rank's (flags both
//                       slow victims and serial-role bottlenecks such as a
//                       blocking master — Bethke's analysis made automatic)
//   * comm-bound phases — windows of the timeline where aggregate compute
//                       occupancy drops below `comm_busy_floor`
//
// `pga_doctor` (tools/) drives this as a CI gate: failure/stall anomalies
// trip a nonzero exit by default, the dynamics diagnostics print as
// warnings.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.hpp"

namespace pga::obs {

enum class AnomalyKind : std::uint8_t {
  kFailedRank,
  kStalledRank,
  kPrematureConvergence,
  kStraggler,
  kCommBound,
  /// Classical fixed-budget speedup overstates the checkpoint-fair number
  /// beyond tolerance (obs/speedup.hpp; pga_doctor's `speedup` subcommand
  /// is the only producer — it needs a baseline trace the streaming
  /// detector does not have).
  kMisleadingSpeedup,
  // Scheduler verdicts (obs/sched.hpp produces these from executor traces;
  // pga_doctor's `sched` subcommand is the driver — the streaming detector
  // does not emit them):
  /// A pool lane's run fraction is far below its siblings' — the loop shape
  /// (or chunk count) never feeds it work.
  kStarvedLane,
  /// Steal failure/success ratio above the floor: lanes burn sweeps finding
  /// nothing, a signature of too few chunks for the lane count.
  kStealStorm,
  /// Median task span at or below the per-task scheduling overhead: the
  /// grain is so fine the pool spends more moving tasks than running them.
  kGrainTooFine,
  /// The async producer sat blocked on a full in-flight window while pool
  /// lanes idled — the window, not evaluation, is the bottleneck.
  kWindowStall,
};

/// Last enumerator, the iteration bound CLI kind tables use.
inline constexpr AnomalyKind kLastAnomalyKind = AnomalyKind::kWindowStall;

[[nodiscard]] constexpr const char* to_string(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kFailedRank: return "failure";
    case AnomalyKind::kStalledRank: return "stall";
    case AnomalyKind::kPrematureConvergence: return "premature_convergence";
    case AnomalyKind::kStraggler: return "straggler";
    case AnomalyKind::kCommBound: return "comm_bound";
    case AnomalyKind::kMisleadingSpeedup: return "misleading_speedup";
    case AnomalyKind::kStarvedLane: return "starved_lane";
    case AnomalyKind::kStealStorm: return "steal_storm";
    case AnomalyKind::kGrainTooFine: return "grain_too_fine";
    case AnomalyKind::kWindowStall: return "window_stall";
  }
  return "?";
}

struct Anomaly {
  AnomalyKind kind = AnomalyKind::kFailedRank;
  int rank = -1;        ///< -1 for whole-run phases (comm-bound)
  double t_begin = 0.0; ///< virtual-time evidence: onset
  double t_end = 0.0;   ///< virtual-time evidence: end of the episode
  double value = 0.0;   ///< kind-specific magnitude (utilization, fraction…)
  std::string detail;   ///< human-readable one-liner

  [[nodiscard]] std::string to_string() const {
    std::ostringstream out;
    out.precision(6);
    out << '[' << obs::to_string(kind) << "] ";
    if (rank >= 0) out << "rank " << rank << ": ";
    out << detail;
    return out.str();
  }
};

struct AnomalyConfig {
  /// A non-failed rank whose last event precedes the makespan by more than
  /// this fraction of it is stalled.
  double stall_fraction = 0.25;
  /// Genotypic diversity below this counts as collapsed.
  double diversity_floor = 0.05;
  /// Fitness within this relative margin of the rank's final best counts as
  /// "plateau reached" (absolute for final best == 0).
  double plateau_margin = 1e-6;
  /// A rank whose utilization is below ratio x median is a straggler.
  double straggler_ratio = 0.5;
  /// Aggregate busy fraction below this marks a window comm/idle-bound.
  double comm_busy_floor = 0.25;
  /// Number of equal windows the makespan is split into for phase analysis.
  std::size_t comm_windows = 16;
  /// Ranks with fewer events than this are ignored by the stall detector
  /// (a lane that only ever logged a metadata mark is not "stalled").
  std::size_t min_events_per_rank = 2;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig cfg = {}) : cfg_(cfg) {}

  /// Feed one event; order does not matter (state is keyed by rank and
  /// finalized against the observed makespan).
  void consume(const Event& e) {
    auto& r = rank_state(e.rank);
    makespan_ = std::max(makespan_, e.t);
    ++r.events;
    r.last_t = std::max(r.last_t, e.t);
    switch (e.kind) {
      case EventKind::kSpanBegin:
        if (is_cpu_span(e.name) && r.depth++ == 0) r.open_t = e.t;
        break;
      case EventKind::kSpanEnd:
        if (is_cpu_span(e.name) && r.depth > 0 && --r.depth == 0)
          add_busy(e.rank, r.open_t, e.t);
        break;
      case EventKind::kNodeFailure:
        if (!r.failed || e.t < r.fail_t) {
          r.failed = true;
          r.fail_t = e.t;
          r.fail_cause = e.name;
        }
        break;
      case EventKind::kGenStats:
        r.fitness.push_back({e.t, e.best});
        break;
      case EventKind::kSearchStats:
        r.diversity.push_back({e.t, e.diversity});
        break;
      case EventKind::kMark:
        // exec::Parallelism tags pool-worker lanes; a wall-clock worker is
        // legitimately idle outside parallel regions, so the virtual-time
        // "every rank stays active to the end" stall heuristic must not
        // apply to it.
        if (std::string_view(e.name) == kWorkerLaneMark) r.wall_lane = true;
        break;
      case EventKind::kAsyncDispatch:
      case EventKind::kAsyncComplete:
        // Async-pipeline engine lanes follow wall-clock conventions too: the
        // engine blocks on the in-flight window whenever evaluation is the
        // bottleneck, and falls silent after the final drain while worker
        // lanes finish their spans — neither is a stall.  In-flight window
        // events are the lane's signature, exactly like kWorkerLaneMark for
        // pool workers.
        r.wall_lane = true;
        break;
      case EventKind::kTaskRun:
      case EventKind::kSteal:
      case EventKind::kLanePark:
        // Executor-lane telemetry: only pool lanes emit these, and a pool
        // lane is legitimately idle whenever no parallel region is open —
        // same exemption as the kWorkerLaneMark tag.
        r.wall_lane = true;
        break;
      default:
        break;
    }
  }

  /// Convenience: drain a whole log.  Zero-copy — consume() is order-
  /// independent, so append-order for_each iteration needs no sort.
  void consume(const EventLog& log) {
    log.for_each([this](const Event& e) { consume(e); });
  }

  /// Finalizes the analysis.  Callable once per detector; the stream state
  /// is not consumed, so interleaving further consume()+finish() rounds
  /// re-evaluates against the longer prefix.
  [[nodiscard]] std::vector<Anomaly> finish() const {
    std::vector<Anomaly> out;
    find_failures(out);
    find_stalls(out);
    find_premature_convergence(out);
    find_stragglers(out);
    find_comm_bound(out);
    return out;
  }

  /// One-shot analysis of a complete log.
  [[nodiscard]] static std::vector<Anomaly> analyze(const EventLog& log,
                                                    AnomalyConfig cfg = {}) {
    AnomalyDetector d(cfg);
    d.consume(log);
    return d.finish();
  }

  [[nodiscard]] double makespan() const noexcept { return makespan_; }

 private:
  struct Sample {
    double t = 0.0;
    double v = 0.0;
  };
  struct RankState {
    std::size_t events = 0;
    double last_t = 0.0;
    bool failed = false;
    bool wall_lane = false;  ///< tagged kWorkerLaneMark (exempt from stalls)
    double fail_t = std::numeric_limits<double>::infinity();
    std::string fail_cause;
    int depth = 0;       ///< open CPU-span nesting (obs::is_cpu_span)
    double open_t = 0.0; ///< outermost open span's begin time
    std::vector<Sample> fitness;   ///< (t, best) from kGenStats
    std::vector<Sample> diversity; ///< (t, genotypic diversity)
  };
  struct BusyInterval {
    double begin = 0.0;
    double end = 0.0;
  };

  RankState& rank_state(int rank) {
    if (rank >= static_cast<int>(ranks_.size()))
      ranks_.resize(static_cast<std::size_t>(rank) + 1);
    return ranks_[static_cast<std::size_t>(rank)];
  }

  void add_busy(int rank, double begin, double end) {
    rank_intervals_.push_back({rank, {begin, end}});
  }

  void find_failures(std::vector<Anomaly>& out) const {
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const auto& s = ranks_[r];
      if (!s.failed) continue;
      Anomaly a;
      a.kind = AnomalyKind::kFailedRank;
      a.rank = static_cast<int>(r);
      a.t_begin = a.t_end = s.fail_t;
      std::ostringstream d;
      d.precision(6);
      d << "node failure at t=" << s.fail_t << " s (cause: "
        << (s.fail_cause.empty() ? "unknown" : s.fail_cause) << ")";
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  void find_stalls(std::vector<Anomaly>& out) const {
    if (ranks_.size() < 2 || makespan_ <= 0.0) return;
    const double horizon = makespan_ * (1.0 - cfg_.stall_fraction);
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const auto& s = ranks_[r];
      if (s.events < cfg_.min_events_per_rank) continue;
      if (s.wall_lane) continue;  // pool workers idle between parallel regions
      // A failed rank's silence is explained by its failure anomaly; still
      // report the stall so the timeline evidence is explicit.
      if (s.last_t >= horizon) continue;
      Anomaly a;
      a.kind = AnomalyKind::kStalledRank;
      a.rank = static_cast<int>(r);
      a.t_begin = s.last_t;
      a.t_end = makespan_;
      a.value = makespan_ - s.last_t;
      std::ostringstream d;
      d.precision(6);
      d << "silent from t=" << s.last_t << " s to makespan " << makespan_
        << " s" << (s.failed ? " (after node failure)" : "");
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  void find_premature_convergence(std::vector<Anomaly>& out) const {
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const auto& s = ranks_[r];
      if (s.diversity.size() < 2 || s.fitness.size() < 2) continue;
      // Collapse onset: first sample below the floor, provided the series
      // was ever above it (a population born converged is not a collapse).
      bool was_alive = false;
      double t_collapse = std::numeric_limits<double>::infinity();
      for (const auto& d : s.diversity) {
        if (d.v >= cfg_.diversity_floor) {
          was_alive = true;
        } else if (was_alive) {
          t_collapse = d.t;
          break;
        }
      }
      if (!std::isfinite(t_collapse)) continue;
      // Plateau time: first t at which best fitness reached (within margin)
      // its final value on this rank.
      double final_best = -std::numeric_limits<double>::infinity();
      for (const auto& f : s.fitness)
        final_best = std::max(final_best, f.v);
      const double margin =
          std::abs(final_best) > 0.0
              ? std::abs(final_best) * cfg_.plateau_margin
              : cfg_.plateau_margin;
      double t_plateau = s.fitness.back().t;
      for (const auto& f : s.fitness)
        if (f.v >= final_best - margin) {
          t_plateau = f.t;
          break;
        }
      if (t_collapse >= t_plateau) continue;  // fitness settled first: healthy
      Anomaly a;
      a.kind = AnomalyKind::kPrematureConvergence;
      a.rank = static_cast<int>(r);
      a.t_begin = t_collapse;
      a.t_end = t_plateau;
      a.value = cfg_.diversity_floor;
      std::ostringstream d;
      d.precision(6);
      d << "diversity fell below " << cfg_.diversity_floor << " at t="
        << t_collapse << " s while best fitness kept moving until t="
        << t_plateau << " s";
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  void find_stragglers(std::vector<Anomaly>& out) const {
    if (makespan_ <= 0.0 || ranks_.size() < 3) return;
    std::vector<double> busy(ranks_.size(), 0.0);
    for (const auto& iv : rank_intervals_)
      busy[static_cast<std::size_t>(iv.first)] += iv.second.end - iv.second.begin;
    // Open spans charged through the makespan.
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      if (ranks_[r].depth > 0) busy[r] += makespan_ - ranks_[r].open_t;
    std::vector<double> utils;
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      if (ranks_[r].events >= cfg_.min_events_per_rank)
        utils.push_back(busy[r] / makespan_);
    if (utils.size() < 3) return;
    std::vector<double> sorted = utils;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    if (median <= 0.0) return;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (ranks_[r].events < cfg_.min_events_per_rank) continue;
      const double util = busy[r] / makespan_;
      if (util >= cfg_.straggler_ratio * median) continue;
      Anomaly a;
      a.kind = AnomalyKind::kStraggler;
      a.rank = static_cast<int>(r);
      a.t_begin = 0.0;
      a.t_end = makespan_;
      a.value = util;
      std::ostringstream d;
      d.precision(3);
      d << "utilization " << util << " vs median " << median
        << " (serial-role bottleneck or straggler victim)";
      a.detail = d.str();
      out.push_back(std::move(a));
    }
  }

  void find_comm_bound(std::vector<Anomaly>& out) const {
    if (makespan_ <= 0.0 || cfg_.comm_windows == 0 || ranks_.empty()) return;
    std::size_t participants = 0;
    for (const auto& r : ranks_)
      if (r.events >= cfg_.min_events_per_rank) ++participants;
    if (participants == 0) return;
    const std::size_t w = cfg_.comm_windows;
    const double dt = makespan_ / static_cast<double>(w);
    std::vector<double> busy(w, 0.0);
    auto charge = [&](double begin, double end) {
      for (std::size_t i = 0; i < w; ++i) {
        const double lo = static_cast<double>(i) * dt;
        const double hi = lo + dt;
        const double overlap = std::min(end, hi) - std::max(begin, lo);
        if (overlap > 0.0) busy[i] += overlap;
      }
    };
    for (const auto& iv : rank_intervals_) charge(iv.second.begin, iv.second.end);
    for (const auto& r : ranks_)
      if (r.depth > 0) charge(r.open_t, makespan_);
    // Merge consecutive under-occupied windows into phases.
    const double capacity = dt * static_cast<double>(participants);
    std::size_t i = 0;
    while (i < w) {
      if (busy[i] / capacity >= cfg_.comm_busy_floor) {
        ++i;
        continue;
      }
      std::size_t j = i;
      double phase_busy = 0.0;
      while (j < w && busy[j] / capacity < cfg_.comm_busy_floor)
        phase_busy += busy[j++];
      Anomaly a;
      a.kind = AnomalyKind::kCommBound;
      a.rank = -1;
      a.t_begin = static_cast<double>(i) * dt;
      a.t_end = static_cast<double>(j) * dt;
      a.value = phase_busy / (capacity * static_cast<double>(j - i));
      std::ostringstream d;
      d.precision(6);
      d << "compute occupancy " << a.value << " in [" << a.t_begin << ", "
        << a.t_end << "] s — communication/idle bound phase";
      a.detail = d.str();
      out.push_back(std::move(a));
      i = j;
    }
  }

  AnomalyConfig cfg_;
  double makespan_ = 0.0;
  std::vector<RankState> ranks_;
  /// Closed outermost CPU spans, tagged with their rank.
  std::vector<std::pair<int, BusyInterval>> rank_intervals_;
};

}  // namespace pga::obs
