#pragma once
// Search-dynamics probes: per-generation algorithm-level observables.
//
// PR 1's obs layer records *system* facts — spans, messages, utilization.
// The survey's quantitative claims, however, are about *search dynamics
// under parallelism*: Giacobini's selection-intensity curves for
// asynchronous cellular EAs, Cantú-Paz's takeover/sizing rules, Alba &
// Troya's migration-policy effects on diversity.  Harada, Alba & Luque
// (2021) argue that distributed-GA evaluation needs exactly these
// algorithm-level observables alongside the wall-clock ones.
//
// A `GenerationProbe` hooks an engine's generation loop and emits one
// `kSearchStats` event per generation through the same nullable `Tracer`:
//
//   * genotypic diversity — per-locus Hamming diversity for bitstrings,
//     centroid dispersion for real vectors, sampled pairwise-distinct rate
//     for any other genome with operator==
//   * phenotypic diversity — fitness standard deviation ("spread")
//   * fitness entropy — Shannon entropy of the binned fitness distribution,
//     normalized to [0, 1]
//   * selection intensity — I = (M_t - M_{t-1}) / sigma_{t-1}, the classic
//     response-to-selection measure the cellular takeover studies plot
//   * takeover fraction — share of the (sampled) population holding the
//     most common genotype, Cantú-Paz / Giacobini's growth-curve quantity
//
// Cost model: like every obs emit site, a probe held against a null tracer
// is exactly one predictable branch per observe() — nothing is computed
// unless an EventLog is attached (BM_ProbeObserveNull in bench_micro_ops
// keeps this honest; the acceptance bound is <= 5 ns per generation-probe).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/genome.hpp"
#include "core/population.hpp"
#include "obs/events.hpp"

namespace pga::obs {

/// One generation's search-dynamics snapshot (the kSearchStats payload).
struct SearchStats {
  double genotypic_diversity = 0.0;
  double phenotypic_diversity = 0.0;  ///< fitness stddev
  double fitness_entropy = 0.0;       ///< normalized to [0, 1]
  double selection_intensity = 0.0;   ///< 0 for the first observed generation
  double takeover_fraction = 0.0;
};

struct ProbeConfig {
  /// Pairwise statistics (takeover, generic genotypic diversity) are
  /// O(k^2) in the sample size; populations larger than this are stride-
  /// sampled down to ~this many individuals.  0 = exact (no cap).
  std::size_t pairwise_sample_cap = 256;
  /// Histogram bins for the fitness-entropy estimate.
  std::size_t entropy_bins = 16;
};

namespace probe_detail {

/// Stride-sampled index set over [0, n): spatially uniform for grid
/// populations (a prefix sample would bias cellular takeover curves toward
/// one corner of the torus).
[[nodiscard]] inline std::size_t sample_stride(std::size_t n,
                                               std::size_t cap) noexcept {
  if (cap == 0 || n <= cap) return 1;
  return (n + cap - 1) / cap;
}

/// Genotypic diversity of [first, last) (iterators over Individual<G>).
/// BitString: expected pairwise per-locus disagreement (0 converged, 0.5
/// random), the mean-Hamming measure of core/diversity.hpp.  RealVector:
/// mean distance to the centroid (scale-dependent).  Anything else with
/// operator==: fraction of sampled pairs that differ (0 converged, 1 all
/// distinct).
template <class It>
[[nodiscard]] double genotypic_diversity(It first, It last,
                                         const ProbeConfig& cfg) {
  using G = std::decay_t<decltype(first->genome)>;
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n < 2) return 0.0;
  if constexpr (std::is_same_v<G, BitString>) {
    const std::size_t length = first->genome.size();
    if (length == 0) return 0.0;
    const double dn = static_cast<double>(n);
    double total = 0.0;
    for (std::size_t locus = 0; locus < length; ++locus) {
      double ones = 0.0;
      for (It it = first; it != last; ++it) ones += it->genome[locus];
      total += 2.0 * ones * (dn - ones) / (dn * (dn - 1.0));
    }
    return total / static_cast<double>(length);
  } else if constexpr (std::is_same_v<G, RealVector>) {
    const std::size_t dims = first->genome.size();
    if (dims == 0) return 0.0;
    RealVector centroid(dims, 0.0);
    for (It it = first; it != last; ++it)
      for (std::size_t d = 0; d < dims; ++d) centroid[d] += it->genome[d];
    for (std::size_t d = 0; d < dims; ++d)
      centroid[d] /= static_cast<double>(n);
    double total = 0.0;
    for (It it = first; it != last; ++it)
      total += it->genome.distance(centroid);
    return total / static_cast<double>(n);
  } else {
    const std::size_t stride = sample_stride(n, cfg.pairwise_sample_cap);
    std::vector<const G*> sample;
    for (std::size_t i = 0; i < n; i += stride)
      sample.push_back(&(first + static_cast<std::ptrdiff_t>(i))->genome);
    if (sample.size() < 2) return 0.0;
    std::size_t pairs = 0, distinct = 0;
    for (std::size_t i = 0; i < sample.size(); ++i)
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        ++pairs;
        distinct += !(*sample[i] == *sample[j]);
      }
    return static_cast<double>(distinct) / static_cast<double>(pairs);
  }
}

/// Takeover fraction over a stride sample of [first, last): the share of
/// sampled individuals holding the single most common genotype.
template <class It>
[[nodiscard]] double takeover_fraction(It first, It last,
                                       const ProbeConfig& cfg) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n == 0) return 0.0;
  const std::size_t stride = sample_stride(n, cfg.pairwise_sample_cap);
  std::vector<It> sample;
  for (std::size_t i = 0; i < n; i += stride)
    sample.push_back(first + static_cast<std::ptrdiff_t>(i));
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < sample.size(); ++j)
      count += (sample[j]->genome == sample[i]->genome);
    best_count = std::max(best_count, count);
  }
  return static_cast<double>(best_count) /
         static_cast<double>(sample.size());
}

/// Normalized Shannon entropy of the binned fitness distribution: 0 when
/// every individual has the same fitness, 1 when the histogram is uniform.
[[nodiscard]] inline double fitness_entropy(const std::vector<double>& fitness,
                                            std::size_t bins) {
  if (fitness.size() < 2 || bins < 2) return 0.0;
  const auto [lo_it, hi_it] =
      std::minmax_element(fitness.begin(), fitness.end());
  const double lo = *lo_it, hi = *hi_it;
  if (!(hi - lo > 0.0) || !std::isfinite(hi - lo)) return 0.0;
  std::vector<std::size_t> hist(bins, 0);
  for (double f : fitness) {
    auto b = static_cast<std::size_t>((f - lo) / (hi - lo) *
                                      static_cast<double>(bins));
    ++hist[std::min(b, bins - 1)];
  }
  const double n = static_cast<double>(fitness.size());
  double h = 0.0;
  for (std::size_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h / std::log2(static_cast<double>(bins));
}

}  // namespace probe_detail

/// Full per-generation computation over a range of Individual<G>.
/// `prev_mean`/`prev_stddev` come from the previous generation's snapshot
/// (selection intensity is 0 when `has_prev` is false or the previous
/// spread was degenerate).
template <class It>
[[nodiscard]] SearchStats compute_search_stats(It first, It last,
                                               const ProbeConfig& cfg,
                                               bool has_prev = false,
                                               double prev_mean = 0.0,
                                               double prev_stddev = 0.0) {
  SearchStats s;
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n == 0) return s;

  std::vector<double> fitness;
  fitness.reserve(n);
  for (It it = first; it != last; ++it) fitness.push_back(it->fitness);
  double mean = 0.0;
  for (double f : fitness) mean += f;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double f : fitness) var += (f - mean) * (f - mean);
  var /= static_cast<double>(n);

  s.phenotypic_diversity = std::sqrt(var);
  s.fitness_entropy = probe_detail::fitness_entropy(fitness, cfg.entropy_bins);
  if (has_prev && prev_stddev > 1e-12)
    s.selection_intensity = (mean - prev_mean) / prev_stddev;
  s.genotypic_diversity = probe_detail::genotypic_diversity(first, last, cfg);
  s.takeover_fraction = probe_detail::takeover_fraction(first, last, cfg);
  return s;
}

/// Generation-loop hook: holds the tracer, the emitting rank and the
/// previous generation's fitness moments (for selection intensity), and
/// emits one kSearchStats event per observe().  Against a null tracer every
/// observe is a single branch — engines can hold a probe unconditionally.
template <class G>
class GenerationProbe {
 public:
  GenerationProbe() = default;
  explicit GenerationProbe(Tracer trace, int rank, ProbeConfig cfg = {})
      : trace_(trace), rank_(rank), cfg_(cfg) {}

  [[nodiscard]] bool enabled() const noexcept { return trace_.enabled(); }

  /// Observe a population snapshot at virtual time `t`.  `gen_evals` is the
  /// number of fitness evaluations this generation performed (throughput
  /// numerator); pass 0 when unknown.
  void observe(const Population<G>& pop, double t, std::uint64_t generation,
               std::uint64_t gen_evals) {
    if (!trace_) return;
    observe_range(pop.begin(), pop.end(), t, generation, gen_evals);
  }

  /// Range form for engines whose population is not a Population<G> — the
  /// parallel cellular grid observes its owned-cell slice directly.
  ///
  /// Besides the search-dynamics payload, every record carries the
  /// checkpoint-fair pair (Harada-Alba-Luque): the range's best fitness and
  /// the probe's running per-rank evaluation total.  Because every engine
  /// already routes its generation loop through a probe, all five models
  /// emit quality-vs-effort checkpoints with no per-engine code.
  template <class It>
  void observe_range(It first, It last, double t, std::uint64_t generation,
                     std::uint64_t gen_evals) {
    if (!trace_) return;
    const auto stats = compute_search_stats(first, last, cfg_, has_prev_,
                                            prev_mean_, prev_stddev_);
    cum_evals_ += gen_evals;
    // Remember this generation's moments for the next intensity estimate.
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    double best = 0.0;
    if (n > 0) {
      best = first->fitness;
      double mean = 0.0;
      for (It it = first; it != last; ++it) {
        mean += it->fitness;
        best = std::max(best, it->fitness);
      }
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (It it = first; it != last; ++it)
        var += (it->fitness - mean) * (it->fitness - mean);
      prev_mean_ = mean;
      prev_stddev_ = std::sqrt(var / static_cast<double>(n));
      has_prev_ = true;
    }
    trace_.search_stats(rank_, t, generation, gen_evals,
                        stats.genotypic_diversity, stats.phenotypic_diversity,
                        stats.fitness_entropy, stats.selection_intensity,
                        stats.takeover_fraction, best, cum_evals_);
  }

 private:
  Tracer trace_{};
  int rank_ = 0;
  ProbeConfig cfg_{};
  bool has_prev_ = false;
  double prev_mean_ = 0.0;
  double prev_stddev_ = 0.0;
  std::uint64_t cum_evals_ = 0;  ///< running per-rank evaluation total
};

}  // namespace pga::obs
