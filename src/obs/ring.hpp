#pragma once
// FlightRecorder: the bounded "black box" behind the Tracer emit path.
//
// Post-hoc tracing (EventLog) retains the whole run, which a long-running
// GA-as-a-service daemon cannot afford: its trace never finishes.  The
// flight recorder keeps only the last `capacity_per_rank` events per rank
// (optionally further bounded by age), so memory is fixed at configuration
// time no matter how long the process lives — and a `snapshot()` at any
// instant recovers the recent past for a crash dump or an anomaly
// investigation, exactly like an aircraft flight recorder.
//
// Guarantees:
//
//   * fixed memory — `max_ranks * capacity_per_rank * sizeof(Event)` worst
//     case, allocated lazily per rank on first emit
//   * exact drop accounting — per ring, `appended == retained +
//     dropped_capacity + dropped_age` holds at every quiescent point, and
//     events emitted for out-of-range ranks are counted too; nothing is
//     lost silently (bench_o1_live_overhead gates on this over a 10^6-event
//     concurrent run)
//   * lock-free reads — `snapshot()` never blocks writers: each ring is a
//     seqlock (writers bump an odd/even version around the slot write;
//     readers copy and retry on a version change).  Writers to the *same*
//     rank serialize on a per-rank mutex; different ranks never contend.
//
// Under ThreadSanitizer the reader takes the per-rank writer mutex instead:
// a seqlock read races with slot writes by design (the version check makes
// the race benign, the retry discards torn copies), but TSan rightly cannot
// prove that, and the repo's CI runs these tests under TSan.  The control
// flow is otherwise identical.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/events.hpp"

#if defined(__SANITIZE_THREAD__)
#define PGA_OBS_RING_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PGA_OBS_RING_TSAN 1
#endif
#endif

namespace pga::obs {

struct FlightRecorderConfig {
  /// Events retained per rank ring (the bounded memory knob).
  std::size_t capacity_per_rank = 4096;
  /// Events older than this relative to the ring's newest timestamp are
  /// evicted at append time (infinity = size-bounded only).  This is the
  /// "last N seconds" knob: with virtual-time traces the unit is virtual
  /// seconds, with wall-clock traces it is wall seconds.
  double max_age_s = std::numeric_limits<double>::infinity();
  /// Hard bound on distinct rank lanes; events for ranks outside
  /// [0, max_ranks) are counted in `dropped_unranked` and discarded.
  std::size_t max_ranks = 1024;
};

/// Exact bookkeeping for one ring (or, summed, for the whole recorder).
struct FlightAccounting {
  std::uint64_t appended = 0;   ///< events accepted into a ring
  std::uint64_t retained = 0;   ///< events currently held
  std::uint64_t dropped_capacity = 0;  ///< evicted by ring wraparound
  std::uint64_t dropped_age = 0;       ///< evicted by the max-age window
  std::uint64_t dropped_unranked = 0;  ///< rank outside [0, max_ranks)

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_capacity + dropped_age + dropped_unranked;
  }
  /// The exactness invariant the O1 bench and TSan tests gate on.
  [[nodiscard]] bool exact() const noexcept {
    return appended == retained + dropped_capacity + dropped_age;
  }
};

class FlightRecorder final : public EventSink {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {})
      : cfg_(cfg),
        rings_(cfg.max_ranks == 0 ? 1 : cfg.max_ranks) {
    if (cfg_.capacity_per_rank == 0) cfg_.capacity_per_rank = 1;
  }

  void append(Event e) override {
    if (e.rank < 0 || static_cast<std::size_t>(e.rank) >= rings_.size()) {
      dropped_unranked_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Ring& r = ring(static_cast<std::size_t>(e.rank));
    std::lock_guard<std::mutex> writer(r.write_mutex);
    const std::uint64_t appended = r.appended.load(std::memory_order_relaxed);
    std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
    e.seq = appended;  // per-rank program order; canonical sort only
                       // compares seq within one rank anyway

    // Begin seqlock write section (version odd).
    r.version.fetch_add(1, std::memory_order_acq_rel);

    // Age eviction first: the new event's timestamp defines "now" for the
    // ring, so anything older than the window goes before we consider
    // capacity.  Timestamps are monotone per rank in every traced engine;
    // an out-of-order stamp merely evicts less than it could.
    if (std::isfinite(cfg_.max_age_s)) {
      const double horizon = e.t - cfg_.max_age_s;
      std::uint64_t aged = 0;
      while (tail < appended &&
             r.slots[tail % cfg_.capacity_per_rank].t < horizon) {
        ++tail;
        ++aged;
      }
      if (aged > 0)
        r.dropped_age.fetch_add(aged, std::memory_order_relaxed);
    }
    // Capacity eviction: overwriting the oldest retained slot.
    if (appended - tail >= cfg_.capacity_per_rank) {
      ++tail;
      r.dropped_capacity.fetch_add(1, std::memory_order_relaxed);
    }
    r.slots[appended % cfg_.capacity_per_rank] = e;
    r.tail.store(tail, std::memory_order_relaxed);
    r.appended.store(appended + 1, std::memory_order_relaxed);

    // End seqlock write section (version even again).
    r.version.fetch_add(1, std::memory_order_release);
  }

  /// Captures the black box at this instant: every retained event (optionally
  /// only those within `window_s` of the newest timestamp seen ring-wide),
  /// in canonical (t, rank, seq) order, plus exact accounting.  Never blocks
  /// writers (see the seqlock note in the header comment).
  struct Snapshot {
    std::vector<Event> events;
    FlightAccounting totals;
    double newest_t = -std::numeric_limits<double>::infinity();
  };

  [[nodiscard]] Snapshot snapshot(
      double window_s = std::numeric_limits<double>::infinity()) const {
    Snapshot out;
    out.totals.dropped_unranked =
        dropped_unranked_.load(std::memory_order_relaxed);
    std::vector<Event> ring_copy;
    for (const auto& slot : rings_) {
      const Ring* r = slot.load(std::memory_order_acquire);
      if (!r) continue;
      std::uint64_t appended = 0;
      std::uint64_t tail = 0;
      read_ring(*r, ring_copy, appended, tail);
      out.totals.appended += appended;
      out.totals.retained += appended - tail;
      out.totals.dropped_capacity +=
          r->dropped_capacity.load(std::memory_order_relaxed);
      out.totals.dropped_age += r->dropped_age.load(std::memory_order_relaxed);
      for (std::uint64_t i = tail; i < appended; ++i) {
        const Event& e = ring_copy[i % cfg_.capacity_per_rank];
        out.newest_t = std::max(out.newest_t, e.t);
        out.events.push_back(e);
      }
    }
    if (std::isfinite(window_s) && !out.events.empty()) {
      const double horizon = out.newest_t - window_s;
      out.events.erase(std::remove_if(out.events.begin(), out.events.end(),
                                      [&](const Event& e) {
                                        return e.t < horizon;
                                      }),
                       out.events.end());
    }
    std::stable_sort(out.events.begin(), out.events.end(),
                     canonical_event_order);
    return out;
  }

  /// Accounting for one rank's ring (zeros if the rank never emitted).
  [[nodiscard]] FlightAccounting rank_accounting(std::size_t rank) const {
    FlightAccounting a;
    if (rank >= rings_.size()) return a;
    const Ring* r = rings_[rank].load(std::memory_order_acquire);
    if (!r) return a;
    a.appended = r->appended.load(std::memory_order_relaxed);
    a.retained = a.appended - r->tail.load(std::memory_order_relaxed);
    a.dropped_capacity = r->dropped_capacity.load(std::memory_order_relaxed);
    a.dropped_age = r->dropped_age.load(std::memory_order_relaxed);
    return a;
  }

  /// Summed accounting over every ring plus unranked drops.
  [[nodiscard]] FlightAccounting accounting() const {
    return snapshot(0.0).totals;  // window 0 still sums accounting; events
                                  // with t == newest_t survive but are unused
  }

  [[nodiscard]] const FlightRecorderConfig& config() const noexcept {
    return cfg_;
  }
  /// Worst-case retained-event memory, the fixed bound the O1 bench reports.
  [[nodiscard]] std::size_t memory_bound_bytes() const noexcept {
    return rings_.size() * cfg_.capacity_per_rank * sizeof(Event);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::mutex write_mutex;             ///< serializes same-rank writers
    std::atomic<std::uint64_t> version{0};  ///< seqlock: odd = write open
    std::atomic<std::uint64_t> appended{0};
    std::atomic<std::uint64_t> tail{0};
    std::atomic<std::uint64_t> dropped_capacity{0};
    std::atomic<std::uint64_t> dropped_age{0};
    std::vector<Event> slots;
  };

  Ring& ring(std::size_t rank) {
    Ring* r = rings_[rank].load(std::memory_order_acquire);
    if (r) return *r;
    auto fresh = std::make_unique<Ring>(cfg_.capacity_per_rank);
    Ring* expected = nullptr;
    if (rings_[rank].compare_exchange_strong(expected, fresh.get(),
                                             std::memory_order_acq_rel)) {
      retired_.push(std::move(fresh));  // owned for the recorder's lifetime
      return *rings_[rank].load(std::memory_order_relaxed);
    }
    return *expected;  // another writer won the race
  }

  /// Seqlock read of one ring into `copy` (resized to capacity).  Retries
  /// until a version-stable copy lands; under TSan, takes the writer mutex
  /// instead so the benign data race is not reported.
  void read_ring(const Ring& r, std::vector<Event>& copy,
                 std::uint64_t& appended, std::uint64_t& tail) const {
#ifdef PGA_OBS_RING_TSAN
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(r.write_mutex));
    appended = r.appended.load(std::memory_order_relaxed);
    tail = r.tail.load(std::memory_order_relaxed);
    copy = r.slots;
#else
    for (;;) {
      const std::uint64_t v1 = r.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // write in progress
      appended = r.appended.load(std::memory_order_relaxed);
      tail = r.tail.load(std::memory_order_relaxed);
      copy = r.slots;
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t v2 = r.version.load(std::memory_order_relaxed);
      if (v1 == v2) return;
    }
#endif
  }

  /// Lock-free-ish ownership pool for lazily created rings: pointers in
  /// `rings_` stay valid for the recorder's lifetime.
  class RingPool {
   public:
    void push(std::unique_ptr<Ring> r) {
      std::lock_guard<std::mutex> lock(mutex_);
      pool_.push_back(std::move(r));
    }

   private:
    std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> pool_;
  };

  FlightRecorderConfig cfg_;
  std::vector<std::atomic<Ring*>> rings_;
  RingPool retired_;
  std::atomic<std::uint64_t> dropped_unranked_{0};
};

}  // namespace pga::obs
