#pragma once
// LiveMonitor: online consumption of an event stream while the run is still
// producing it.
//
// The post-hoc pipeline is  closed log -> AnomalyDetector::analyze /
// RunReport::from -> verdicts.  The live pipeline is the same analyses fed
// incrementally:  StreamReader::poll -> LiveMonitor::consume -> evaluate(),
// re-callable as the stream grows because AnomalyDetector::finish() is a
// const view over the consumed prefix.  Equivalence with the offline path
// is a test invariant (tests/test_live.cpp): replaying a complete trace
// through the monitor yields the same verdict set the offline doctor
// computes on the full dump — the monitor just gets them while the run is
// still alive.
//
// On the first *gated* verdict (the failure/stall/misleading-speedup set
// the doctor exits nonzero for) the monitor dumps its bound FlightRecorder
// — the bounded black box riding the same Tracer via a TeeSink — as a
// pga-event-log-v1 file, capturing the last-N-seconds context of the
// anomaly even though the full trace may be far too large to keep.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/checkpoints.hpp"
#include "obs/event_json.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/ring.hpp"
#include "obs/stream.hpp"

namespace pga::obs {

struct LiveMonitorConfig {
  AnomalyConfig anomaly{};
  /// Verdict kinds that fire the gate (and the black-box dump).  Defaults
  /// to the doctor's default gate set.
  std::vector<AnomalyKind> gated = {AnomalyKind::kFailedRank,
                                    AnomalyKind::kStalledRank};
  /// Optional black box: when a gated verdict first fires, its snapshot is
  /// dumped to `black_box_path` as a pga-event-log-v1 file.
  FlightRecorder* black_box = nullptr;
  std::string black_box_path = "pga_blackbox.json";
  /// Snapshot window passed to FlightRecorder::snapshot at dump time.
  double black_box_window_s = std::numeric_limits<double>::infinity();
  /// Optional registry: evaluate() maintains pga_live_* series in it.
  MetricsRegistry* metrics = nullptr;
  /// Retain every consumed event so report()/quality_effort() can build the
  /// full post-hoc analyses on demand.  Off = bounded memory (rolling
  /// Progress counters and the anomaly detector state only).
  bool retain_events = true;
};

class LiveMonitor {
 public:
  /// Rolling throughput/quality counters, cheap enough to print every poll.
  struct Progress {
    std::uint64_t events = 0;
    double makespan = 0.0;  ///< newest timestamp seen
    double best = -std::numeric_limits<double>::infinity();
    std::uint64_t generations = 0;  ///< kGenStats records
    std::uint64_t evaluations = 0;  ///< summed kSearchStats gen_evals
    std::uint64_t messages = 0;     ///< kMessageSent records
    std::uint64_t bytes = 0;        ///< summed kMessageSent payload bytes
    std::uint64_t failures = 0;     ///< kNodeFailure records

    [[nodiscard]] double eval_throughput() const noexcept {
      return makespan > 0.0 ? static_cast<double>(evaluations) / makespan
                            : 0.0;
    }
  };

  explicit LiveMonitor(LiveMonitorConfig cfg = {})
      : cfg_(std::move(cfg)), detector_(cfg_.anomaly) {
    gated_.fill(false);
    for (const AnomalyKind k : cfg_.gated)
      gated_[static_cast<std::size_t>(k)] = true;
  }

  /// Feed one event (any order, matching AnomalyDetector::consume).
  void consume(const Event& e) {
    detector_.consume(e);
    feeder_.consume(e);
    if (cfg_.retain_events) events_.push_back(e);
    ++progress_.events;
    progress_.makespan = std::max(progress_.makespan, e.t);
    switch (e.kind) {
      case EventKind::kGenStats:
        ++progress_.generations;
        progress_.best = std::max(progress_.best, e.best);
        break;
      case EventKind::kSearchStats:
        progress_.evaluations += e.count;
        if (e.evaluations > 0)
          progress_.best = std::max(progress_.best, e.best);
        break;
      case EventKind::kMessageSent:
        ++progress_.messages;
        progress_.bytes += e.count;
        break;
      case EventKind::kNodeFailure:
        ++progress_.failures;
        break;
      default:
        break;
    }
  }

  /// Drain everything the reader can deliver right now, then re-evaluate
  /// verdicts (and fire the black-box dump if a gated one appeared).
  /// Returns the number of events consumed this call.
  std::size_t poll(StreamReader& reader) {
    const std::size_t n = reader.poll([this](const Event& e) { consume(e); });
    if (n > 0) evaluate();
    return n;
  }

  /// Re-runs the detector over the consumed prefix.  Sticky gate: once a
  /// gated verdict has fired it stays fired, and the black box (if bound)
  /// is dumped exactly once, at first fire.
  const std::vector<Anomaly>& evaluate() {
    verdicts_ = detector_.finish();
    for (const Anomaly& a : verdicts_) {
      if (!gated_[static_cast<std::size_t>(a.kind)]) continue;
      if (!gate_fired_) {
        gate_fired_ = true;
        first_gated_ = a;
        dump_black_box();
      }
      break;
    }
    if (cfg_.metrics) update_metrics();
    return verdicts_;
  }

  [[nodiscard]] const Progress& progress() const noexcept { return progress_; }
  /// Verdicts from the last evaluate() (empty before the first call).
  [[nodiscard]] const std::vector<Anomaly>& verdicts() const noexcept {
    return verdicts_;
  }
  [[nodiscard]] bool gate_fired() const noexcept { return gate_fired_; }
  /// The anomaly that tripped the gate (valid only when gate_fired()).
  [[nodiscard]] const Anomaly& first_gated() const noexcept {
    return first_gated_;
  }
  [[nodiscard]] bool black_box_dumped() const noexcept {
    return black_box_dumped_;
  }

  /// Full post-hoc report over everything consumed so far.  Requires
  /// cfg.retain_events (throws otherwise — the bounded mode deliberately
  /// cannot reconstruct the whole run).
  [[nodiscard]] RunReport report() const {
    require_retained();
    std::vector<Event> sorted = events_;
    std::stable_sort(sorted.begin(), sorted.end(), canonical_event_order);
    return RunReport::from(std::move(sorted));
  }

  /// Checkpoint-fair quality/effort curves over the consumed prefix.  Built
  /// from the streaming feeder, so this works in bounded mode too.
  [[nodiscard]] QualityEffort quality_effort() const {
    QualityEffort::Feeder copy = feeder_;
    return std::move(copy).build();
  }

  [[nodiscard]] const std::vector<Event>& retained_events() const {
    require_retained();
    return events_;
  }

  [[nodiscard]] const LiveMonitorConfig& config() const noexcept {
    return cfg_;
  }

 private:
  void require_retained() const {
    if (!cfg_.retain_events)
      throw std::logic_error(
          "LiveMonitor: retain_events is off; full-run analyses are "
          "unavailable in bounded mode");
  }

  void dump_black_box() {
    if (!cfg_.black_box || black_box_dumped_) return;
    const auto snap = cfg_.black_box->snapshot(cfg_.black_box_window_s);
    save_event_log(snap.events, cfg_.black_box_path);
    black_box_dumped_ = true;
  }

  void update_metrics() {
    auto& m = *cfg_.metrics;
    auto& events = m.counter("pga_live_events_total",
                             "Events consumed by the live monitor");
    if (progress_.events > events.value())
      events.inc(progress_.events - events.value());
    m.gauge("pga_live_makespan_seconds",
            "Newest event timestamp seen by the live monitor")
        .set(progress_.makespan);
    m.gauge("pga_live_best_fitness", "Best fitness observed so far")
        .set(progress_.best);
    m.gauge("pga_live_eval_throughput",
            "Evaluations per virtual second over the consumed prefix")
        .set(progress_.eval_throughput());
    for (std::size_t k = 0; k <= static_cast<std::size_t>(kLastAnomalyKind);
         ++k) {
      std::uint64_t n = 0;
      for (const Anomaly& a : verdicts_)
        if (static_cast<std::size_t>(a.kind) == k) ++n;
      m.gauge("pga_live_anomalies",
              "Current verdict count by anomaly kind",
              {{"kind", obs::to_string(static_cast<AnomalyKind>(k))}})
          .set(static_cast<double>(n));
    }
  }

  LiveMonitorConfig cfg_;
  AnomalyDetector detector_;
  QualityEffort::Feeder feeder_;
  std::vector<Event> events_;
  Progress progress_;
  std::vector<Anomaly> verdicts_;
  std::array<bool, static_cast<std::size_t>(kLastAnomalyKind) + 1> gated_{};
  bool gate_fired_ = false;
  Anomaly first_gated_;
  bool black_box_dumped_ = false;
};

}  // namespace pga::obs
