#pragma once
// Analytic models from the theory the survey reviews (Cantú-Paz 2000,
// Goldberg/Harik population sizing, Sarma & De Jong cellular takeover,
// Amdahl/Gustafson speedup laws).  Experiments overlay these predictions on
// measured curves (E1, E4, E6) — the "rational design of fast and accurate
// PGAs" toolkit the dissertation is praised for in §2.

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace pga::theory {

// ---------------------------------------------------------------------------
// Master-slave timing (Cantú-Paz ch. 4)
// ---------------------------------------------------------------------------

/// Wall time of one master-slave generation: n evaluations of cost Tf spread
/// over s slaves, plus per-slave communication cost Tc (send work + receive
/// results).  T(s) = n Tf / s + s Tc.
[[nodiscard]] inline double master_slave_generation_time(std::size_t n,
                                                         double tf, double tc,
                                                         std::size_t s) {
  if (s == 0) throw std::invalid_argument("need at least one slave");
  return static_cast<double>(n) * tf / static_cast<double>(s) +
         static_cast<double>(s) * tc;
}

/// The slave count minimizing the above: s* = sqrt(n Tf / Tc).
[[nodiscard]] inline double optimal_slave_count(std::size_t n, double tf,
                                                double tc) {
  if (tc <= 0.0) throw std::invalid_argument("communication cost must be > 0");
  return std::sqrt(static_cast<double>(n) * tf / tc);
}

/// Speedup of the master-slave PGA at s slaves vs. sequential evaluation.
[[nodiscard]] inline double master_slave_speedup(std::size_t n, double tf,
                                                 double tc, std::size_t s) {
  return static_cast<double>(n) * tf /
         master_slave_generation_time(n, tf, tc, s);
}

// ---------------------------------------------------------------------------
// Classic speedup laws
// ---------------------------------------------------------------------------

/// Amdahl's law: serial fraction (1 - f) bounds speedup at p processors.
[[nodiscard]] inline double amdahl_speedup(double parallel_fraction,
                                           std::size_t p) {
  if (parallel_fraction < 0.0 || parallel_fraction > 1.0)
    throw std::invalid_argument("parallel fraction in [0, 1]");
  return 1.0 / ((1.0 - parallel_fraction) +
                parallel_fraction / static_cast<double>(p));
}

/// Gustafson's law: scaled speedup for a problem grown with p.
[[nodiscard]] inline double gustafson_speedup(double parallel_fraction,
                                              std::size_t p) {
  return static_cast<double>(p) -
         (1.0 - parallel_fraction) * (static_cast<double>(p) - 1.0);
}

// ---------------------------------------------------------------------------
// Population sizing (gambler's ruin model; Harik et al., Cantú-Paz)
// ---------------------------------------------------------------------------

/// Gambler's-ruin population size for a problem of m' building blocks of
/// size k: n = -2^(k-1) ln(alpha) * (sigma_bb sqrt(pi m')) / d, where alpha
/// is the acceptable per-block failure probability, d the fitness signal
/// between best and second block, and sigma_bb the block fitness noise.
[[nodiscard]] inline double gamblers_ruin_population_size(
    std::size_t k, double alpha, double sigma_bb, double d,
    std::size_t m_prime) {
  if (alpha <= 0.0 || alpha >= 1.0)
    throw std::invalid_argument("failure probability alpha in (0, 1)");
  if (d <= 0.0) throw std::invalid_argument("signal d must be > 0");
  return -std::pow(2.0, static_cast<double>(k) - 1.0) * std::log(alpha) *
         sigma_bb * std::sqrt(3.14159265358979323846 * static_cast<double>(m_prime)) / d;
}

/// Predicted success probability of a single building block under the
/// gambler's ruin model for population size n:
///   P = 1 - alpha = 1 - exp(-n d / (2^(k-1) sigma_bb sqrt(pi m'))).
[[nodiscard]] inline double gamblers_ruin_success_probability(
    double n, std::size_t k, double sigma_bb, double d, std::size_t m_prime) {
  const double denom = std::pow(2.0, static_cast<double>(k) - 1.0) * sigma_bb *
                       std::sqrt(3.14159265358979323846 * static_cast<double>(m_prime));
  return 1.0 - std::exp(-n * d / denom);
}

// ---------------------------------------------------------------------------
// Takeover time / selection intensity
// ---------------------------------------------------------------------------

/// Panmictic takeover time under binary-tournament-like selection with
/// per-step growth factor close to logistic: t* ≈ ln(n) / ln(2) generations
/// for one copy to fill a population of n (Goldberg & Deb 1991 shape).
[[nodiscard]] inline double panmictic_takeover_time(std::size_t n) {
  return std::log(static_cast<double>(n)) / std::log(2.0);
}

/// Logistic growth curve: proportion of best copies after t steps with
/// initial proportion p0 and growth rate r.
[[nodiscard]] inline double logistic_growth(double p0, double r, double t) {
  return 1.0 / (1.0 + (1.0 / p0 - 1.0) * std::exp(-r * t));
}

/// Cellular takeover is bounded by spatial diffusion: the best individual
/// spreads at most `radius` cells per sweep, so a WxH torus needs at least
/// ceil((W + H) / (4 * radius)) sweeps — linear, not logarithmic, growth
/// (Sarma & De Jong 1997; the qualitative contrast E4 demonstrates).
[[nodiscard]] inline double cellular_takeover_lower_bound(std::size_t width,
                                                          std::size_t height,
                                                          std::size_t radius) {
  // The farthest cell on a torus is (W/2 + H/2) Manhattan steps away.
  return std::ceil(
      (static_cast<double>(width) / 2.0 + static_cast<double>(height) / 2.0) /
      static_cast<double>(radius));
}

// ---------------------------------------------------------------------------
// Island model timing
// ---------------------------------------------------------------------------

/// Virtual wall time of one island-model epoch: each of the p demes runs
/// deme_size evaluations of cost Tf in parallel, then exchanges `migrants`
/// individuals of `bytes_each` along `edges_per_deme` links every
/// `interval` generations (costs amortized per generation).
[[nodiscard]] inline double island_generation_time(std::size_t deme_size,
                                                   double tf, double latency,
                                                   double bytes_per_migrant,
                                                   double bandwidth,
                                                   std::size_t migrants,
                                                   std::size_t edges_per_deme,
                                                   std::size_t interval) {
  const double comm = interval == 0
                          ? 0.0
                          : static_cast<double>(edges_per_deme) *
                                (latency + static_cast<double>(migrants) *
                                               bytes_per_migrant / bandwidth) /
                                static_cast<double>(interval);
  return static_cast<double>(deme_size) * tf + comm;
}

/// Ideal island-model speedup at p demes when the total population n is
/// split evenly and communication is amortized: close to p until the
/// per-epoch communication term dominates.
[[nodiscard]] inline double island_speedup(std::size_t n, std::size_t p,
                                           double tf, double comm_per_gen) {
  const double seq = static_cast<double>(n) * tf;
  const double par = seq / static_cast<double>(p) + comm_per_gen;
  return seq / par;
}

}  // namespace pga::theory
