#pragma once
// Pareto utilities for multi-objective PGAs (all objectives minimized):
// dominance, fast non-dominated sorting, crowding distance, the 2-D
// hypervolume indicator and the additive epsilon indicator.  Used by the
// specialized island model (Xiao & Armstrong 2003) experiments.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace pga::multiobj {

/// True iff `a` Pareto-dominates `b` (<= everywhere, < somewhere).
[[nodiscard]] inline bool dominates(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

/// Indices of the non-dominated points in `points`.
[[nodiscard]] inline std::vector<std::size_t> nondominated_indices(
    const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j)
      if (j != i && (dominates(points[j], points[i]) ||
                     (points[j] == points[i] && j < i)))
        dominated = true;  // duplicates keep only their first occurrence
    if (!dominated) front.push_back(i);
  }
  return front;
}

/// Fast non-dominated sort (Deb's NSGA-II): returns fronts of indices, best
/// front first.
[[nodiscard]] inline std::vector<std::vector<std::size_t>> nondominated_sort(
    const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(points[p], points[q]))
        dominated_by[p].push_back(q);
      else if (dominates(points[q], points[p]))
        ++domination_count[p];
    }
    if (domination_count[p] == 0) fronts[0].push_back(p);
  }

  std::size_t f = 0;
  while (!fronts[f].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[f]) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    fronts.push_back(std::move(next));
    ++f;
  }
  fronts.pop_back();  // the trailing empty front
  return fronts;
}

/// NSGA-II crowding distance for the points at `front` indices.
[[nodiscard]] inline std::vector<double> crowding_distance(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  const std::size_t m = points[front[0]].size();
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][obj] < points[front[b]][obj];
    });
    const double lo = points[front[order.front()]][obj];
    const double hi = points[front[order.back()]][obj];
    dist[order.front()] = dist[order.back()] =
        std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;
    for (std::size_t k = 1; k + 1 < n; ++k) {
      dist[order[k]] += (points[front[order[k + 1]]][obj] -
                         points[front[order[k - 1]]][obj]) /
                        (hi - lo);
    }
  }
  return dist;
}

/// 2-D hypervolume dominated by `points` with respect to `reference`
/// (both objectives minimized; points beyond the reference contribute 0).
[[nodiscard]] inline double hypervolume_2d(
    std::vector<std::vector<double>> points,
    const std::vector<double>& reference) {
  if (reference.size() != 2)
    throw std::invalid_argument("hypervolume_2d needs a 2-D reference point");
  // Keep only points strictly better than the reference in both objectives.
  std::erase_if(points, [&](const std::vector<double>& p) {
    return p[0] >= reference[0] || p[1] >= reference[1];
  });
  if (points.empty()) return 0.0;
  // Sort by f0 ascending; sweep keeping the best f1 so far.
  std::sort(points.begin(), points.end());
  double volume = 0.0;
  double prev_f1 = reference[1];
  for (const auto& p : points) {
    if (p[1] < prev_f1) {
      volume += (reference[0] - p[0]) * (prev_f1 - p[1]);
      prev_f1 = p[1];
    }
  }
  return volume;
}

/// Additive epsilon indicator: the smallest shift e such that every point of
/// `reference_front` is weakly dominated by some point of `approx` shifted by
/// -e (smaller is better; 0 means `approx` covers the reference front).
[[nodiscard]] inline double epsilon_indicator(
    const std::vector<std::vector<double>>& approx,
    const std::vector<std::vector<double>>& reference_front) {
  double eps = 0.0;
  for (const auto& r : reference_front) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& a : approx) {
      double worst_obj = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < r.size(); ++i)
        worst_obj = std::max(worst_obj, a[i] - r[i]);
      best = std::min(best, worst_obj);
    }
    eps = std::max(eps, best);
  }
  return eps;
}

}  // namespace pga::multiobj
