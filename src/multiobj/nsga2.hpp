#pragma once
// NSGA-II (Deb et al. 2000/2002): the era's canonical multi-objective GA,
// built from the Pareto utilities in pareto.hpp.  Serves as the panmictic
// baseline the specialized island model is compared against in E8's
// extended runs, and as a library feature in its own right (the survey's
// perspective section expects multi-objective frameworks).
//
// Implementation: (mu + mu) survival with fast non-dominated sorting and
// crowding-distance truncation; binary tournament on (rank, crowding).

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/crossover.hpp"
#include "core/mutation.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "multiobj/pareto.hpp"

namespace pga::multiobj {

/// One NSGA-II member: genome plus cached objective vector.
template <class G>
struct MoIndividual {
  G genome{};
  std::vector<double> objectives;
};

template <class G>
struct Nsga2Config {
  std::size_t population_size = 100;
  Crossover<G> cross;
  Mutation<G> mutate;
  double crossover_rate = 0.9;
};

template <class G>
struct Nsga2Result {
  std::vector<MoIndividual<G>> population;
  /// Indices of the first non-dominated front within `population`.
  std::vector<std::size_t> front;
  std::size_t evaluations = 0;

  [[nodiscard]] std::vector<std::vector<double>> front_objectives() const {
    std::vector<std::vector<double>> out;
    out.reserve(front.size());
    for (std::size_t i : front) out.push_back(population[i].objectives);
    return out;
  }
};

template <class G>
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config<G> config) : config_(std::move(config)) {
    if (config_.population_size < 4)
      throw std::invalid_argument("NSGA-II population must be >= 4");
  }

  /// Runs `generations` generations from random genomes built by `make`.
  template <class MakeGenome>
  Nsga2Result<G> run(const MultiObjectiveProblem<G>& problem,
                     std::size_t generations, MakeGenome&& make, Rng& rng) {
    Nsga2Result<G> result;
    std::vector<MoIndividual<G>> pop;
    pop.reserve(config_.population_size);
    for (std::size_t i = 0; i < config_.population_size; ++i) {
      MoIndividual<G> ind;
      ind.genome = make(rng);
      ind.objectives = problem.evaluate(ind.genome);
      ++result.evaluations;
      pop.push_back(std::move(ind));
    }

    for (std::size_t gen = 0; gen < generations; ++gen) {
      // Rank + crowding of the current population (for mating selection).
      auto [rank, crowd] = rank_and_crowd(pop);

      auto tournament = [&](Rng& r) -> const MoIndividual<G>& {
        const std::size_t a = r.index(pop.size());
        const std::size_t b = r.index(pop.size());
        if (rank[a] != rank[b]) return pop[rank[a] < rank[b] ? a : b];
        return pop[crowd[a] > crowd[b] ? a : b];
      };

      // Offspring.
      std::vector<MoIndividual<G>> offspring;
      offspring.reserve(config_.population_size);
      while (offspring.size() < config_.population_size) {
        const auto& p1 = tournament(rng);
        const auto& p2 = tournament(rng);
        G c1 = p1.genome, c2 = p2.genome;
        if (rng.bernoulli(config_.crossover_rate)) {
          auto [a, b] = config_.cross(p1.genome, p2.genome, rng);
          c1 = std::move(a);
          c2 = std::move(b);
        }
        config_.mutate(c1, rng);
        offspring.push_back(evaluate(problem, std::move(c1), result));
        if (offspring.size() < config_.population_size) {
          config_.mutate(c2, rng);
          offspring.push_back(evaluate(problem, std::move(c2), result));
        }
      }

      // (mu + mu) environmental selection.
      for (auto& child : offspring) pop.push_back(std::move(child));
      pop = truncate(std::move(pop));
    }

    auto [rank, crowd] = rank_and_crowd(pop);
    for (std::size_t i = 0; i < pop.size(); ++i)
      if (rank[i] == 0) result.front.push_back(i);
    result.population = std::move(pop);
    return result;
  }

 private:
  [[nodiscard]] static MoIndividual<G> evaluate(
      const MultiObjectiveProblem<G>& problem, G genome,
      Nsga2Result<G>& result) {
    MoIndividual<G> ind;
    ind.genome = std::move(genome);
    ind.objectives = problem.evaluate(ind.genome);
    ++result.evaluations;
    return ind;
  }

  /// Computes per-individual front rank and crowding distance.
  [[nodiscard]] static std::pair<std::vector<std::size_t>, std::vector<double>>
  rank_and_crowd(const std::vector<MoIndividual<G>>& pop) {
    std::vector<std::vector<double>> points;
    points.reserve(pop.size());
    for (const auto& ind : pop) points.push_back(ind.objectives);
    const auto fronts = nondominated_sort(points);
    std::vector<std::size_t> rank(pop.size(), 0);
    std::vector<double> crowd(pop.size(), 0.0);
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      const auto dist = crowding_distance(points, fronts[f]);
      for (std::size_t k = 0; k < fronts[f].size(); ++k) {
        rank[fronts[f][k]] = f;
        crowd[fronts[f][k]] = dist[k];
      }
    }
    return {std::move(rank), std::move(crowd)};
  }

  /// Keeps the best population_size individuals by (front, crowding).
  [[nodiscard]] std::vector<MoIndividual<G>> truncate(
      std::vector<MoIndividual<G>> merged) const {
    std::vector<std::vector<double>> points;
    points.reserve(merged.size());
    for (const auto& ind : merged) points.push_back(ind.objectives);
    const auto fronts = nondominated_sort(points);

    std::vector<MoIndividual<G>> next;
    next.reserve(config_.population_size);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= config_.population_size) {
        for (std::size_t i : front) next.push_back(std::move(merged[i]));
        continue;
      }
      // Partial front: keep the most crowded-out... i.e. LARGEST distances.
      const auto dist = crowding_distance(points, front);
      std::vector<std::size_t> order(front.size());
      for (std::size_t k = 0; k < front.size(); ++k) order[k] = k;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return dist[a] > dist[b];
      });
      for (std::size_t k = 0;
           k < order.size() && next.size() < config_.population_size; ++k)
        next.push_back(std::move(merged[front[order[k]]]));
      break;
    }
    return next;
  }

  Nsga2Config<G> config_;
};

}  // namespace pga::multiobj
