#pragma once
// Population diversity measures.
//
// Migration-policy and sync/async studies (Alba & Troya) interpret their
// results through diversity: frequent best-migrant exchange collapses it,
// isolation preserves it but starves recombination.  These metrics
// instrument that story: per-locus entropy and mean pairwise Hamming
// distance for bitstrings, centroid dispersion for real vectors, and a
// genotype-frequency takeover fraction used by the selection-pressure
// experiments.

#include <cmath>
#include <cstddef>
#include <map>
#include <vector>

#include "core/genome.hpp"
#include "core/population.hpp"

namespace pga::diversity {

/// Mean per-locus Shannon entropy (bits) of a bitstring population: 1.0 for
/// a uniform-random population, 0.0 when fully converged.
[[nodiscard]] inline double bit_entropy(const Population<BitString>& pop) {
  if (pop.empty() || pop[0].genome.empty()) return 0.0;
  const std::size_t length = pop[0].genome.size();
  const double n = static_cast<double>(pop.size());
  double total = 0.0;
  for (std::size_t locus = 0; locus < length; ++locus) {
    std::size_t ones = 0;
    for (const auto& ind : pop) ones += ind.genome[locus];
    const double p = static_cast<double>(ones) / n;
    if (p > 0.0 && p < 1.0)
      total += -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
  }
  return total / static_cast<double>(length);
}

/// Mean pairwise Hamming distance, normalized by genome length (0 =
/// converged, 0.5 = random).  O(n * L) via per-locus counting.
[[nodiscard]] inline double mean_hamming(const Population<BitString>& pop) {
  if (pop.size() < 2 || pop[0].genome.empty()) return 0.0;
  const std::size_t length = pop[0].genome.size();
  const double n = static_cast<double>(pop.size());
  double total = 0.0;
  for (std::size_t locus = 0; locus < length; ++locus) {
    double ones = 0.0;
    for (const auto& ind : pop) ones += ind.genome[locus];
    // Expected pairwise disagreement at this locus.
    total += 2.0 * ones * (n - ones) / (n * (n - 1.0));
  }
  return total / static_cast<double>(length);
}

/// Mean Euclidean distance of real-vector genomes to their centroid.
[[nodiscard]] inline double centroid_dispersion(
    const Population<RealVector>& pop) {
  if (pop.empty() || pop[0].genome.size() == 0) return 0.0;
  const std::size_t dims = pop[0].genome.size();
  RealVector centroid(dims, 0.0);
  for (const auto& ind : pop)
    for (std::size_t d = 0; d < dims; ++d) centroid[d] += ind.genome[d];
  for (std::size_t d = 0; d < dims; ++d)
    centroid[d] /= static_cast<double>(pop.size());
  double total = 0.0;
  for (const auto& ind : pop) total += ind.genome.distance(centroid);
  return total / static_cast<double>(pop.size());
}

/// Fraction of the population holding the single most common genotype — the
/// quantity takeover-time experiments track.
template <class G>
[[nodiscard]] double takeover_fraction(const Population<G>& pop) {
  if (pop.empty()) return 0.0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < pop.size(); ++j)
      count += (pop[j].genome == pop[i].genome);
    best_count = std::max(best_count, count);
  }
  return static_cast<double>(best_count) / static_cast<double>(pop.size());
}

/// Number of distinct genotypes present (bitstring specialization via map
/// over the string form; O(n log n)).
[[nodiscard]] inline std::size_t distinct_genotypes(
    const Population<BitString>& pop) {
  std::map<std::string, std::size_t> seen;
  for (const auto& ind : pop) ++seen[ind.genome.to_string()];
  return seen.size();
}

}  // namespace pga::diversity
