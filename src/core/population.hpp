#pragma once
// Individuals and populations.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/soa.hpp"
#include "exec/parallelism.hpp"

namespace pga {

/// A genome paired with its (lazily computed) fitness.
template <class G>
struct Individual {
  G genome{};
  double fitness = -std::numeric_limits<double>::infinity();
  bool evaluated = false;

  Individual() = default;
  explicit Individual(G g) : genome(std::move(g)) {}
  Individual(G g, double f) : genome(std::move(g)), fitness(f), evaluated(true) {}
};

/// A population is a vector of individuals plus bookkeeping helpers.  It is a
/// plain container: evolution engines own the update logic, demes own the
/// migration logic.
template <class G>
class Population {
 public:
  using IndividualT = Individual<G>;

  Population() = default;
  explicit Population(std::vector<IndividualT> members)
      : members_(std::move(members)) {}

  /// Builds a population of `n` random genomes via `make(rng)`.
  template <class MakeFn>
  [[nodiscard]] static Population random(std::size_t n, MakeFn&& make,
                                         Rng& rng) {
    std::vector<IndividualT> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) members.emplace_back(make(rng));
    return Population(std::move(members));
  }

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  [[nodiscard]] IndividualT& operator[](std::size_t i) { return members_[i]; }
  [[nodiscard]] const IndividualT& operator[](std::size_t i) const {
    return members_[i];
  }

  [[nodiscard]] auto begin() noexcept { return members_.begin(); }
  [[nodiscard]] auto end() noexcept { return members_.end(); }
  [[nodiscard]] auto begin() const noexcept { return members_.begin(); }
  [[nodiscard]] auto end() const noexcept { return members_.end(); }

  [[nodiscard]] std::vector<IndividualT>& members() noexcept { return members_; }
  [[nodiscard]] const std::vector<IndividualT>& members() const noexcept {
    return members_;
  }

  void push_back(IndividualT ind) { members_.push_back(std::move(ind)); }

  /// Evaluates every not-yet-evaluated member against `problem`; returns the
  /// number of fitness evaluations performed.  When the problem provides a
  /// batched SoA kernel, the dirty members are packed into a reused slab and
  /// evaluated block-wise — bit-identical to the scalar loop (the kernels
  /// replay the scalar operation order per genome).
  std::size_t evaluate_all(const Problem<G>& problem) {
    if constexpr (SoaTraits<G>::kEnabled) {
      if (problem.has_soa_kernel()) {
        collect_dirty();
        if (dirty_.empty()) return 0;
        const auto view = prepare_dirty();
        const auto scratch = slab_.fitness_scratch();
        // Pack/evaluate/scatter in L1-sized tiles: gathering the whole slab
        // up front streams it through cache twice more than the scalar path
        // streams the genomes, which erases the kernel win for cheap
        // objectives at large populations (measured in K1).
        const std::size_t tile = soa_tile_blocks(view.dim);
        for (std::size_t b0 = 0; b0 < view.blocks(); b0 += tile) {
          const std::size_t b1 = std::min(view.blocks(), b0 + tile);
          pack_dirty(b0, b1);
          problem.fitness_soa(
              view.slice(b0, b1),
              scratch.subspan(b0 * kSoaLanes, (b1 - b0) * kSoaLanes));
          scatter_fitness(b0 * kSoaLanes,
                          std::min(dirty_.size(), b1 * kSoaLanes));
        }
        return dirty_.size();
      }
    }
    std::size_t evals = 0;
    for (auto& ind : members_) {
      if (!ind.evaluated) {
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
        ++evals;
      }
    }
    return evals;
  }

  /// Executor-aware evaluation: gathers the indices of not-yet-evaluated
  /// members first, then dispatches only those through `par.for_range` in
  /// cache-friendly contiguous batches — workers never branch on the
  /// `evaluated` flag (see BM_EvaluateAllSparse for the dense/sparse delta).
  /// Requires `problem.fitness` to be thread-compatible (pure, or internally
  /// synchronized): chunks call it concurrently from pool lanes.  Results
  /// are bit-identical to the sequential overload at any thread count —
  /// each dirty individual is evaluated exactly once, in place, and no RNG
  /// is consumed.  With an inline executor and no tracer this forwards to
  /// the plain loop above.
  std::size_t evaluate_all(const Problem<G>& problem,
                           const exec::Parallelism& par,
                           std::size_t grain = 0) {
    if (!par.parallel() && !par.tracer()) return evaluate_all(problem);
    if constexpr (SoaTraits<G>::kEnabled) {
      if (problem.has_soa_kernel())
        return evaluate_all_soa(problem, par, grain);
    }
    collect_dirty();
    if (dirty_.empty()) return 0;
    const obs::Tracer& trace = par.tracer();
    IndividualT* const m = members_.data();
    const std::uint32_t* const idx = dirty_.data();
    par.for_range(
        0, dirty_.size(), grain,
        [&](std::size_t lo, std::size_t hi, int lane) {
          if (trace) trace.span_begin(lane, par.now(), "compute");
          for (std::size_t k = lo; k < hi; ++k) {
            IndividualT& ind = m[idx[k]];
            ind.fitness = problem.fitness(ind.genome);
            ind.evaluated = true;
          }
          if (trace) {
            const double t1 = par.now();
            trace.evaluation_batch(lane, t1, hi - lo, "eval_chunk");
            trace.span_end(lane, t1, "compute");
          }
        });
    return dirty_.size();
  }

  /// Index of the best (highest-fitness) individual.  Population must be
  /// non-empty and evaluated.
  [[nodiscard]] std::size_t best_index() const {
    if (members_.empty()) throw std::logic_error("best_index on empty population");
    std::size_t best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness > members_[best].fitness) best = i;
    return best;
  }

  [[nodiscard]] const IndividualT& best() const { return members_[best_index()]; }

  [[nodiscard]] std::size_t worst_index() const {
    if (members_.empty()) throw std::logic_error("worst_index on empty population");
    std::size_t worst = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness < members_[worst].fitness) worst = i;
    return worst;
  }

  /// Single-pass {worst_index, best_index} fold for engines that need both
  /// (generation snapshots, migration pick/replace).  Tie-identical to the
  /// separate scans: both keep the first extremum, and an element below the
  /// running min can never also exceed the running max, so the else-if loses
  /// nothing.  Population must be non-empty and evaluated.
  [[nodiscard]] std::pair<std::size_t, std::size_t> minmax_indices() const {
    if (members_.empty())
      throw std::logic_error("minmax_indices on empty population");
    std::size_t worst = 0, best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i) {
      const double f = members_[i].fitness;
      if (f < members_[worst].fitness)
        worst = i;
      else if (f > members_[best].fitness)
        best = i;
    }
    return {worst, best};
  }

  [[nodiscard]] double best_fitness() const { return best().fitness; }

  [[nodiscard]] double mean_fitness() const {
    double s = 0.0;
    for (const auto& ind : members_) s += ind.fitness;
    return members_.empty() ? 0.0 : s / static_cast<double>(members_.size());
  }

  /// Fitness values of all members in order (used by index-based selectors).
  [[nodiscard]] std::vector<double> fitness_values() const {
    std::vector<double> f;
    fitness_values_into(f);
    return f;
  }

  /// Allocation-free variant: refills `out` in place (engines pass a
  /// workspace buffer reused across generations).
  void fitness_values_into(std::vector<double>& out) const {
    out.resize(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i)
      out[i] = members_[i].fitness;
  }

  /// Sorts members by descending fitness (best first).
  void sort_descending() {
    std::sort(members_.begin(), members_.end(),
              [](const IndividualT& a, const IndividualT& b) {
                return a.fitness > b.fitness;
              });
  }

 private:
  /// Refills `dirty_` with the indices of not-yet-evaluated members.
  void collect_dirty() {
    dirty_.clear();
    dirty_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i)
      if (!members_[i].evaluated)
        dirty_.push_back(static_cast<std::uint32_t>(i));
  }

  /// Sizes and validates the reused slab for the dirty genomes (no packing
  /// yet); returns the padded view.  Pair with pack_dirty per block tile.
  [[nodiscard]] SoaView<G> prepare_dirty() {
    return slab_.prepare(dirty_.size(), [this](std::size_t k) -> const G& {
      return members_[dirty_[k]].genome;
    });
  }

  /// Packs the dirty genomes of blocks [b0, b1) into the slab.  Disjoint
  /// block ranges write disjoint slab bytes, so executor lanes pack their
  /// own tiles concurrently.
  void pack_dirty(std::size_t b0, std::size_t b1) {
    slab_.pack_blocks(b0, b1, [this](std::size_t k) -> const G& {
      return members_[dirty_[k]].genome;
    });
  }

  /// Blocks per pack/evaluate/scatter tile: one tile of slab (~32 KiB) stays
  /// L1-resident while the genomes stream through exactly once, matching the
  /// scalar path's traffic.
  [[nodiscard]] static std::size_t soa_tile_blocks(std::size_t dim) {
    constexpr std::size_t kTileBytes = 32 * 1024;
    const std::size_t block_bytes =
        std::max<std::size_t>(1, dim * kSoaLanes *
                                     sizeof(typename SoaTraits<G>::Elem));
    return std::max<std::size_t>(1, kTileBytes / block_bytes);
  }

  /// Copies fitness for padded indices [k0, k1) back onto the dirty members.
  /// Padded index k corresponds to genome k for k < dirty_.size(), so the
  /// scatter is a straight indexed copy.
  void scatter_fitness(std::size_t k0, std::size_t k1) {
    const auto fit = slab_.fitness_scratch();
    for (std::size_t k = k0; k < k1; ++k) {
      IndividualT& ind = members_[dirty_[k]];
      ind.fitness = fit[k];
      ind.evaluated = true;
    }
  }

  /// Batched-kernel evaluation through the executor: tiles whole SoA blocks
  /// (kSoaLanes genomes each) across pool lanes, mirroring the scalar path's
  /// compute/eval_chunk trace spans.  Thread-count invariant: every block is
  /// evaluated by exactly one lane, writing disjoint fitness slots.
  std::size_t evaluate_all_soa(const Problem<G>& problem,
                               const exec::Parallelism& par,
                               std::size_t grain) {
    collect_dirty();
    if (dirty_.empty()) return 0;
    const auto view = prepare_dirty();
    const obs::Tracer& trace = par.tracer();
    const std::size_t block_grain =
        grain == 0 ? 0 : (grain + kSoaLanes - 1) / kSoaLanes;
    const std::size_t tile = soa_tile_blocks(view.dim);
    par.for_range(
        0, view.blocks(), block_grain,
        [&](std::size_t lo, std::size_t hi, int lane) {
          if (trace) trace.span_begin(lane, par.now(), "compute");
          std::size_t evals = 0;
          // Each lane packs, evaluates, and scatters its own blocks in
          // L1-sized tiles: disjoint block ranges touch disjoint slab bytes
          // and disjoint members, so no synchronization is needed, and the
          // pack itself parallelizes instead of running serially up front.
          for (std::size_t b0 = lo; b0 < hi; b0 += tile) {
            const std::size_t b1 = std::min(hi, b0 + tile);
            slab_.pack_blocks(b0, b1, [this](std::size_t k) -> const G& {
              return members_[dirty_[k]].genome;
            });
            const SoaView<G> chunk = view.slice(b0, b1);
            problem.fitness_soa(chunk, slab_.fitness_scratch().subspan(
                                           b0 * kSoaLanes,
                                           (b1 - b0) * kSoaLanes));
            scatter_fitness(b0 * kSoaLanes,
                            std::min(dirty_.size(), b1 * kSoaLanes));
            evals += chunk.count;
          }
          if (trace) {
            const double t1 = par.now();
            trace.evaluation_batch(lane, t1, evals, "eval_chunk");
            trace.span_end(lane, t1, "compute");
          }
        });
    return dirty_.size();
  }

  std::vector<IndividualT> members_;
  std::vector<std::uint32_t> dirty_;  ///< reused dirty-index scratch
  SoaSlab<G> slab_;                   ///< reused gather/eval slab
};

}  // namespace pga
