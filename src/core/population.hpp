#pragma once
// Individuals and populations.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#ifdef PGA_ROUTE_DEBUG
#include <cstdio>
#endif
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/soa.hpp"
#include "exec/parallelism.hpp"

namespace pga {

/// A genome paired with its (lazily computed) fitness.
template <class G>
struct Individual {
  G genome{};
  double fitness = -std::numeric_limits<double>::infinity();
  bool evaluated = false;

  Individual() = default;
  explicit Individual(G g) : genome(std::move(g)) {}
  Individual(G g, double f) : genome(std::move(g)), fitness(f), evaluated(true) {}
};

/// Which evaluation path evaluate_all takes when the problem has a batched
/// SoA kernel.  Both paths are bit-identical (the kernels replay the scalar
/// operation order per genome), so the route is purely a throughput choice:
/// pack+kernel wins for arithmetic-dense objectives but can lose to the plain
/// scalar loop for cheap ones at small dimensions, where the gather/scatter
/// traffic dominates (the Sphere regressions measured in BENCH_k1).
enum class SoaRoute : std::uint8_t {
  kAuto,     ///< one-time calibration per (problem, dim) decides: the first
             ///< big-enough sweep is split between the two real routes and
             ///< wall-timed (small dirty sets use a warm micro-duel instead)
  kScalar,   ///< always the scalar fitness loop
  kBatched,  ///< always the packed SoA kernel
};

/// A population is a vector of individuals plus bookkeeping helpers.  It is a
/// plain container: evolution engines own the update logic, demes own the
/// migration logic.
template <class G>
class Population {
 public:
  using IndividualT = Individual<G>;

  Population() = default;
  explicit Population(std::vector<IndividualT> members)
      : members_(std::move(members)) {}

  /// Builds a population of `n` random genomes via `make(rng)`.
  template <class MakeFn>
  [[nodiscard]] static Population random(std::size_t n, MakeFn&& make,
                                         Rng& rng) {
    std::vector<IndividualT> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) members.emplace_back(make(rng));
    return Population(std::move(members));
  }

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  [[nodiscard]] IndividualT& operator[](std::size_t i) { return members_[i]; }
  [[nodiscard]] const IndividualT& operator[](std::size_t i) const {
    return members_[i];
  }

  [[nodiscard]] auto begin() noexcept { return members_.begin(); }
  [[nodiscard]] auto end() noexcept { return members_.end(); }
  [[nodiscard]] auto begin() const noexcept { return members_.begin(); }
  [[nodiscard]] auto end() const noexcept { return members_.end(); }

  [[nodiscard]] std::vector<IndividualT>& members() noexcept { return members_; }
  [[nodiscard]] const std::vector<IndividualT>& members() const noexcept {
    return members_;
  }

  void push_back(IndividualT ind) { members_.push_back(std::move(ind)); }

  /// Selects the evaluation route for SoA-capable problems; kAuto (the
  /// default) calibrates once per (problem, dim).  Changing the route resets
  /// the calibration cache.
  void set_soa_route(SoaRoute route) noexcept {
    soa_route_ = route;
    route_problem_ = nullptr;
    route_dim_ = 0;
  }
  [[nodiscard]] SoaRoute soa_route() const noexcept { return soa_route_; }

  /// Evaluates every not-yet-evaluated member against `problem`; returns the
  /// number of fitness evaluations performed.  When the problem provides a
  /// batched SoA kernel and the route picks it (see SoaRoute), the dirty
  /// members are packed into a reused slab and evaluated block-wise —
  /// bit-identical to the scalar loop (the kernels replay the scalar
  /// operation order per genome).  kAuto calibration keeps every scalar
  /// evaluation it performs (fitness written back), and the return value
  /// counts *all* fitness work, including the cold-route duel's timing
  /// passes (the batched pass of an expensive-objective duel and the
  /// interleaved re-timing reps of a cheap one) — so effort accounting
  /// (QualityEffort, gen-evals) sees the true evaluation cost of the run.
  /// That cost is wall-clock adaptive, so the cold kAuto return is not a
  /// pure function of the seed; pin a route via set_soa_route where exact,
  /// reproducible counts are required (fitness values are bit-identical on
  /// every route regardless).  See calibrate_micro_duel / duel_route for
  /// the per-pass breakdown.
  std::size_t evaluate_all(const Problem<G>& problem) {
    if constexpr (SoaTraits<G>::kEnabled) {
      if (problem.has_soa_kernel() && !members_.empty()) {
        if (route_is_cold(problem)) {
          collect_dirty();
          if (dirty_.empty()) return 0;
          if (dirty_.size() >= kRouteCalibMinDirty)
            return calibrate_split_sweep(problem, nullptr, 0);
          return calibrate_micro_duel(problem, nullptr, 0);
        }
        if (use_batched()) {
          collect_dirty();
          if (dirty_.empty()) return 0;
          return evaluate_dirty_soa(problem);
        }
        // Scalar verdict (cached or forced): the flag-guarded loop below is
        // the fastest scalar route — cheap-objective sweeps are sensitive to
        // even the dirty-index pass, so don't pay it.
      }
    }
    std::size_t evals = 0;
    for (auto& ind : members_) {
      if (!ind.evaluated) {
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
        ++evals;
      }
    }
    return evals;
  }

  /// Executor-aware evaluation: gathers the indices of not-yet-evaluated
  /// members first, then dispatches only those through `par.for_range` in
  /// cache-friendly contiguous batches — workers never branch on the
  /// `evaluated` flag (see BM_EvaluateAllSparse for the dense/sparse delta).
  /// Requires `problem.fitness` to be thread-compatible (pure, or internally
  /// synchronized): chunks call it concurrently from pool lanes.  Results
  /// are bit-identical to the sequential overload at any thread count —
  /// each dirty individual is evaluated exactly once, in place, and no RNG
  /// is consumed.  With an inline executor and no tracer this forwards to
  /// the plain loop above.
  std::size_t evaluate_all(const Problem<G>& problem,
                           const exec::Parallelism& par,
                           std::size_t grain = 0) {
    if (!par.parallel() && !par.tracer()) return evaluate_all(problem);
    if constexpr (SoaTraits<G>::kEnabled) {
      if (problem.has_soa_kernel() && !members_.empty()) {
        if (route_is_cold(problem)) {
          collect_dirty();
          if (dirty_.empty()) return 0;
          if (dirty_.size() >= kRouteCalibMinDirty)
            return calibrate_split_sweep(problem, &par, grain);
          return calibrate_micro_duel(problem, &par, grain);
        }
        if (use_batched()) {
          return evaluate_all_soa(problem, par, grain);
        }
        // fall through: the scalar chunked loop below is the better route
      }
    }
    collect_dirty();
    return evaluate_dirty_scalar_par(problem, par, grain);
  }

  /// Index of the best (highest-fitness) individual.  Population must be
  /// non-empty and evaluated.
  [[nodiscard]] std::size_t best_index() const {
    if (members_.empty()) throw std::logic_error("best_index on empty population");
    std::size_t best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness > members_[best].fitness) best = i;
    return best;
  }

  [[nodiscard]] const IndividualT& best() const { return members_[best_index()]; }

  [[nodiscard]] std::size_t worst_index() const {
    if (members_.empty()) throw std::logic_error("worst_index on empty population");
    std::size_t worst = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness < members_[worst].fitness) worst = i;
    return worst;
  }

  /// Single-pass {worst_index, best_index} fold for engines that need both
  /// (generation snapshots, migration pick/replace).  Tie-identical to the
  /// separate scans: both keep the first extremum, and an element below the
  /// running min can never also exceed the running max, so the else-if loses
  /// nothing.  Population must be non-empty and evaluated.
  [[nodiscard]] std::pair<std::size_t, std::size_t> minmax_indices() const {
    if (members_.empty())
      throw std::logic_error("minmax_indices on empty population");
    std::size_t worst = 0, best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i) {
      const double f = members_[i].fitness;
      if (f < members_[worst].fitness)
        worst = i;
      else if (f > members_[best].fitness)
        best = i;
    }
    return {worst, best};
  }

  [[nodiscard]] double best_fitness() const { return best().fitness; }

  [[nodiscard]] double mean_fitness() const {
    double s = 0.0;
    for (const auto& ind : members_) s += ind.fitness;
    return members_.empty() ? 0.0 : s / static_cast<double>(members_.size());
  }

  /// Fitness values of all members in order (used by index-based selectors).
  [[nodiscard]] std::vector<double> fitness_values() const {
    std::vector<double> f;
    fitness_values_into(f);
    return f;
  }

  /// Allocation-free variant: refills `out` in place (engines pass a
  /// workspace buffer reused across generations).
  void fitness_values_into(std::vector<double>& out) const {
    out.resize(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i)
      out[i] = members_[i].fitness;
  }

  /// Sorts members by descending fitness (best first).
  void sort_descending() {
    std::sort(members_.begin(), members_.end(),
              [](const IndividualT& a, const IndividualT& b) {
                return a.fitness > b.fitness;
              });
  }

 private:
  /// Scalar evaluation of the already-collected dirty members (the non-kernel
  /// route after collect_dirty has run).
  std::size_t evaluate_dirty_scalar(const Problem<G>& problem) {
    for (const std::uint32_t i : dirty_) {
      IndividualT& ind = members_[i];
      ind.fitness = problem.fitness(ind.genome);
      ind.evaluated = true;
    }
    return dirty_.size();
  }

  /// Executor variant of the scalar route: chunks the already-collected
  /// dirty indices across pool lanes (shared by evaluate_all's tail and the
  /// micro-duel's scalar-verdict remainder).
  std::size_t evaluate_dirty_scalar_par(const Problem<G>& problem,
                                        const exec::Parallelism& par,
                                        std::size_t grain) {
    if (dirty_.empty()) return 0;
    const obs::Tracer& trace = par.tracer();
    IndividualT* const m = members_.data();
    const std::uint32_t* const idx = dirty_.data();
    par.for_range(
        0, dirty_.size(), grain,
        [&](std::size_t lo, std::size_t hi, int lane) {
          if (trace) trace.span_begin(lane, par.now(), "compute");
          for (std::size_t k = lo; k < hi; ++k) {
            IndividualT& ind = m[idx[k]];
            ind.fitness = problem.fitness(ind.genome);
            ind.evaluated = true;
          }
          if (trace) {
            const double t1 = par.now();
            trace.evaluation_batch(lane, t1, hi - lo, "eval_chunk");
            trace.span_end(lane, t1, "compute");
          }
        });
    return dirty_.size();
  }

  /// Batched evaluation of the already-collected dirty members.
  /// Pack/evaluate/scatter in L1-sized tiles: gathering the whole slab up
  /// front streams it through cache twice more than the scalar path streams
  /// the genomes, which erases the kernel win for cheap objectives at large
  /// populations (measured in K1).
  std::size_t evaluate_dirty_soa(const Problem<G>& problem) {
    const auto view = prepare_dirty();
    const auto scratch = slab_.fitness_scratch();
    const std::size_t tile = soa_tile_blocks(view.dim);
    for (std::size_t b0 = 0; b0 < view.blocks(); b0 += tile) {
      const std::size_t b1 = std::min(view.blocks(), b0 + tile);
      pack_dirty(b0, b1);
      problem.fitness_soa(
          view.slice(b0, b1),
          scratch.subspan(b0 * kSoaLanes, (b1 - b0) * kSoaLanes));
      scatter_fitness(b0 * kSoaLanes,
                      std::min(dirty_.size(), b1 * kSoaLanes));
    }
    return dirty_.size();
  }

  /// Dirty-set floor for the split-sweep calibrator: below this, halves are
  /// too small to time and the whole working set is cache-hot anyway, so the
  /// micro-duel (calibrate_micro_duel) is both cheaper and the *correct*
  /// model of the sweeps it predicts.
  static constexpr std::size_t kRouteCalibMinDirty = 4 * kSoaLanes;

  /// True when kAuto has no cached verdict for this (problem, dim) yet.
  /// Keyed on the first member's dimension — populations are
  /// dim-homogeneous — so the check works before dirty collection.
  /// Precondition: members_ is non-empty.
  [[nodiscard]] bool route_is_cold(const Problem<G>& problem) const {
    if (soa_route_ != SoaRoute::kAuto) return false;
    return route_problem_ != &problem ||
           route_dim_ != SoaTraits<G>::dim(members_[0].genome);
  }

  /// Route decision for a problem with a SoA kernel on a *warm* cache:
  /// forced routes win, otherwise the cached kAuto verdict.  Cold kAuto
  /// caches never reach here — evaluate_all routes them through a calibrator
  /// (split-sweep or micro-duel), both of which key the verdict on (problem
  /// address, dimension); the key is heuristic — a new problem at a recycled
  /// address reuses a stale verdict, which costs throughput only, never
  /// correctness, because both routes are bit-identical.
  [[nodiscard]] bool use_batched() const noexcept {
    if (soa_route_ == SoaRoute::kBatched) return true;
    if (soa_route_ == SoaRoute::kScalar) return false;
    return route_batched_;
  }

  /// One-shot route calibration that IS the sweep: evaluates the first half
  /// of the dirty set through the real scalar route and the rest through the
  /// real batched route, wall-timing both, and caches the faster verdict.
  /// Every evaluation is kept, so the only cost of calibrating is running
  /// half of one sweep on the losing route — and unlike a hot micro-duel on
  /// a few cached genomes, the halves see the true tiled pack/scatter cost
  /// and the true cache footprint at this population size (a 32-genome duel
  /// votes batched for Sphere; the real sweep loses 0.6x — measured in K1).
  /// `par == nullptr` means the sequential overload.
  /// Both halves are timed cold, single-shot: repeating a small half to
  /// stretch the timing window warms it into L1 and understates the batched
  /// route's streaming cost — the exact bias the split-sweep exists to
  /// avoid (measured: warm reps say 5.1ns/eval batched vs 7.9ns cold, and
  /// the cold number matches the real sweep).  Tiny-window noise is handled
  /// by the asymmetric margin below instead.
  std::size_t calibrate_split_sweep(const Problem<G>& problem,
                                    const exec::Parallelism* par,
                                    std::size_t grain) {
    using clock = std::chrono::steady_clock;
    const std::size_t dim = SoaTraits<G>::dim(members_[0].genome);
    const std::size_t n = dirty_.size();
    const std::size_t half = n / 2;
    const auto t0 = clock::now();
    if (par) {
      IndividualT* const m = members_.data();
      const std::uint32_t* const idx = dirty_.data();
      const obs::Tracer& trace = par->tracer();
      par->for_range(0, half, grain,
                     [&](std::size_t lo, std::size_t hi, int lane) {
                       if (trace) trace.span_begin(lane, par->now(), "compute");
                       for (std::size_t k = lo; k < hi; ++k) {
                         IndividualT& ind = m[idx[k]];
                         ind.fitness = problem.fitness(ind.genome);
                         ind.evaluated = true;
                       }
                       if (trace) {
                         const double t1 = par->now();
                         trace.evaluation_batch(lane, t1, hi - lo, "eval_chunk");
                         trace.span_end(lane, t1, "compute");
                       }
                     });
    } else {
      for (std::size_t k = 0; k < half; ++k) {
        IndividualT& ind = members_[dirty_[k]];
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
      }
    }
    const auto t1 = clock::now();
    collect_dirty();  // now exactly the unevaluated second half
    const std::size_t rest = dirty_.size();
    if (par)
      (void)evaluate_all_soa(problem, *par, grain);
    else
      (void)evaluate_dirty_soa(problem);
    const auto t2 = clock::now();
    const double scalar_per =
        std::chrono::duration<double>(t1 - t0).count() /
        static_cast<double>(half);
    const double batched_per =
        std::chrono::duration<double>(t2 - t1).count() /
        static_cast<double>(rest);
    // The contract is asymmetric: missing a batched win costs throughput,
    // losing to scalar breaks the routed guarantee.  With a comfortable
    // timing window batched must win by >10%; when both halves finished
    // inside the noise floor (cheap objective, small population) a single
    // preempted microsecond can fake a modest batched win, so demand a
    // landslide — real batched wins at that scale are 3-4x (transcendental
    // kernels), which clears it, while cache-noise flips land near 1x.
    constexpr auto kTrustFloor = std::chrono::microseconds(20);
    const double margin = (t2 - t0) >= kTrustFloor ? 0.9 : 0.5;
    route_batched_ = batched_per < margin * scalar_per;
#ifdef PGA_ROUTE_DEBUG
    std::fprintf(stderr,
                 "[route] n=%zu half=%zu rest=%zu margin=%.1f "
                 "scalar=%.2fns batched=%.2fns -> %s\n",
                 n, half, rest, margin, scalar_per * 1e9, batched_per * 1e9,
                 route_batched_ ? "batched" : "scalar");
#endif
    route_problem_ = &problem;
    route_dim_ = dim;
    return n;
  }

  /// Times one repetition of `body`, repeating until ~20us of samples or 16
  /// reps accumulate — the do-while exits after a single pass for expensive
  /// objectives, so calibration cost stays bounded.  `reps_out` accumulates
  /// the repetitions actually run, so callers whose body performs fitness
  /// evaluations can count that work (see duel_route).
  template <class Body>
  [[nodiscard]] static double time_loop(Body&& body, int& reps_out) {
    using clock = std::chrono::steady_clock;
    constexpr auto kMinSample = std::chrono::microseconds(20);
    constexpr int kMaxReps = 16;
    int reps = 0;
    const auto t0 = clock::now();
    auto elapsed = t0 - t0;
    do {
      body();
      ++reps;
      elapsed = clock::now() - t0;
    } while (elapsed < kMinSample && reps < kMaxReps);
    reps_out += reps;
    return std::chrono::duration<double>(elapsed).count() / reps;
  }

  /// Cold-route calibration for dirty sets too small to split-sweep: duels
  /// the two routes on a sample of the dirty members (duel_route), caches
  /// the verdict, then evaluates the remaining dirty members through the
  /// winning route.  The duel's scalar pass IS the real evaluation of the
  /// sampled members — fitness is written back, mirroring the split-sweep's
  /// every-evaluation-kept contract — so an expensive objective never pays
  /// discarded scalar evaluations.  The return value is kept evaluations
  /// plus the duel's timing passes plus the remainder: every fitness call
  /// the calibration makes is reflected in the caller-visible count.
  /// `par == nullptr` means the sequential overload.
  std::size_t calibrate_micro_duel(const Problem<G>& problem,
                                   const exec::Parallelism* par,
                                   std::size_t grain) {
    const std::size_t kept = duel_route(problem);
    collect_dirty();  // now exactly the unsampled remainder
    std::size_t rest = 0;
    if (route_batched_) {
      rest = par ? evaluate_all_soa(problem, *par, grain)
                 : evaluate_dirty_soa(problem);
    } else {
      rest = par ? evaluate_dirty_scalar_par(problem, *par, grain)
                 : evaluate_dirty_scalar(problem);
    }
    return kept + rest;
  }

  /// Wall-clock duel on a sample of the dirty members: the scalar fitness
  /// loop vs pack + kernel (the pack is charged to the batched side — it is
  /// part of that route's real cost).  Caches the verdict keyed on (problem,
  /// dim) and returns the number of fitness evaluations performed: the
  /// sample members evaluated-and-kept PLUS every timing pass — they are
  /// real evaluations of real genomes, and effort accounting must see them
  /// (the PR-8 accounting gap: timing passes used to go uncounted).
  ///
  /// The kept scalar pass doubles as a cheapness probe.  When it alone fills
  /// a trustworthy timing window, the objective is expensive and a single
  /// batched pass settles the duel — re-running either side would burn real
  /// evaluations purely on timing, so the duel costs exactly one extra
  /// kernel pass over the <= 2*kSoaLanes sampled genomes (counted as
  /// `sample` evaluations).  Below the window the objective is ns-scale and
  /// single passes sit inside scheduler noise, so fall back to the
  /// interleaved duel: three rounds per side, keeping each side's *minimum*
  /// (one preempted sample would otherwise stick a wrong verdict in the
  /// cache for the rest of the run) — each rep re-evaluates the sample, and
  /// every rep of both sides is counted.  Either way batched must beat
  /// scalar by >10% to win: near break-even the scalar path is the safer
  /// default, since the routed contract (K1) is "never meaningfully worse
  /// than scalar".
  std::size_t duel_route(const Problem<G>& problem) {
    // Local, not static: concurrent populations (one per island rank) may
    // calibrate at once, and a shared sink is a data race.  A volatile
    // automatic still defeats dead-code elimination.
    volatile double sink = 0.0;
    using clock = std::chrono::steady_clock;
    constexpr auto kTrustWindow = std::chrono::microseconds(20);
    const std::size_t sample = std::min(dirty_.size(), 2 * kSoaLanes);
    const auto genome_at = [this](std::size_t k) -> const G& {
      return members_[dirty_[k]].genome;
    };
    const auto t0 = clock::now();
    for (std::size_t k = 0; k < sample; ++k) {
      IndividualT& ind = members_[dirty_[k]];
      ind.fitness = problem.fitness(ind.genome);
      ind.evaluated = true;
    }
    const auto cold = clock::now() - t0;
    double scalar_s = std::chrono::duration<double>(cold).count();
    double batched_s;
    int timing_reps = 0;  // time_loop reps; each one evaluates `sample`
    if (cold >= kTrustWindow) {
      const auto t1 = clock::now();
      const SoaView<G> view = slab_.gather(sample, genome_at);
      problem.fitness_soa(view, slab_.fitness_scratch().subspan(
                                    0, view.blocks() * kSoaLanes));
      sink = slab_.fitness_scratch()[0];
      batched_s = std::chrono::duration<double>(clock::now() - t1).count();
      timing_reps = 1;  // the single batched pass
    } else {
      scalar_s = std::numeric_limits<double>::infinity();
      batched_s = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        scalar_s = std::min(scalar_s, time_loop(
                                          [&] {
                                            double s = 0.0;
                                            for (std::size_t k = 0; k < sample;
                                                 ++k)
                                              s += problem.fitness(genome_at(k));
                                            sink = s;
                                          },
                                          timing_reps));
        batched_s = std::min(batched_s, time_loop(
                                            [&] {
                                              const SoaView<G> view =
                                                  slab_.gather(sample, genome_at);
                                              problem.fitness_soa(
                                                  view,
                                                  slab_.fitness_scratch().subspan(
                                                      0, view.blocks() *
                                                             kSoaLanes));
                                              sink = slab_.fitness_scratch()[0];
                                            },
                                            timing_reps));
      }
    }
    route_batched_ = batched_s < 0.9 * scalar_s;
    route_problem_ = &problem;
    route_dim_ = SoaTraits<G>::dim(members_[0].genome);
    return sample + static_cast<std::size_t>(timing_reps) * sample;
  }

  /// Refills `dirty_` with the indices of not-yet-evaluated members.
  void collect_dirty() {
    dirty_.clear();
    dirty_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i)
      if (!members_[i].evaluated)
        dirty_.push_back(static_cast<std::uint32_t>(i));
  }

  /// Sizes and validates the reused slab for the dirty genomes (no packing
  /// yet); returns the padded view.  Pair with pack_dirty per block tile.
  [[nodiscard]] SoaView<G> prepare_dirty() {
    return slab_.prepare(dirty_.size(), [this](std::size_t k) -> const G& {
      return members_[dirty_[k]].genome;
    });
  }

  /// Packs the dirty genomes of blocks [b0, b1) into the slab.  Disjoint
  /// block ranges write disjoint slab bytes, so executor lanes pack their
  /// own tiles concurrently.
  void pack_dirty(std::size_t b0, std::size_t b1) {
    slab_.pack_blocks(b0, b1, [this](std::size_t k) -> const G& {
      return members_[dirty_[k]].genome;
    });
  }

  /// Blocks per pack/evaluate/scatter tile: one tile of slab (~32 KiB) stays
  /// L1-resident while the genomes stream through exactly once, matching the
  /// scalar path's traffic.
  [[nodiscard]] static std::size_t soa_tile_blocks(std::size_t dim) {
    constexpr std::size_t kTileBytes = 32 * 1024;
    const std::size_t block_bytes =
        std::max<std::size_t>(1, dim * kSoaLanes *
                                     sizeof(typename SoaTraits<G>::Elem));
    return std::max<std::size_t>(1, kTileBytes / block_bytes);
  }

  /// Copies fitness for padded indices [k0, k1) back onto the dirty members.
  /// Padded index k corresponds to genome k for k < dirty_.size(), so the
  /// scatter is a straight indexed copy.
  void scatter_fitness(std::size_t k0, std::size_t k1) {
    const auto fit = slab_.fitness_scratch();
    for (std::size_t k = k0; k < k1; ++k) {
      IndividualT& ind = members_[dirty_[k]];
      ind.fitness = fit[k];
      ind.evaluated = true;
    }
  }

  /// Batched-kernel evaluation through the executor: tiles whole SoA blocks
  /// (kSoaLanes genomes each) across pool lanes, mirroring the scalar path's
  /// compute/eval_chunk trace spans.  Thread-count invariant: every block is
  /// evaluated by exactly one lane, writing disjoint fitness slots.
  std::size_t evaluate_all_soa(const Problem<G>& problem,
                               const exec::Parallelism& par,
                               std::size_t grain) {
    collect_dirty();
    if (dirty_.empty()) return 0;
    const auto view = prepare_dirty();
    const obs::Tracer& trace = par.tracer();
    const std::size_t block_grain =
        grain == 0 ? 0 : (grain + kSoaLanes - 1) / kSoaLanes;
    const std::size_t tile = soa_tile_blocks(view.dim);
    par.for_range(
        0, view.blocks(), block_grain,
        [&](std::size_t lo, std::size_t hi, int lane) {
          if (trace) trace.span_begin(lane, par.now(), "compute");
          std::size_t evals = 0;
          // Each lane packs, evaluates, and scatters its own blocks in
          // L1-sized tiles: disjoint block ranges touch disjoint slab bytes
          // and disjoint members, so no synchronization is needed, and the
          // pack itself parallelizes instead of running serially up front.
          for (std::size_t b0 = lo; b0 < hi; b0 += tile) {
            const std::size_t b1 = std::min(hi, b0 + tile);
            slab_.pack_blocks(b0, b1, [this](std::size_t k) -> const G& {
              return members_[dirty_[k]].genome;
            });
            const SoaView<G> chunk = view.slice(b0, b1);
            problem.fitness_soa(chunk, slab_.fitness_scratch().subspan(
                                           b0 * kSoaLanes,
                                           (b1 - b0) * kSoaLanes));
            scatter_fitness(b0 * kSoaLanes,
                            std::min(dirty_.size(), b1 * kSoaLanes));
            evals += chunk.count;
          }
          if (trace) {
            const double t1 = par.now();
            trace.evaluation_batch(lane, t1, evals, "eval_chunk");
            trace.span_end(lane, t1, "compute");
          }
        });
    return dirty_.size();
  }

  std::vector<IndividualT> members_;
  std::vector<std::uint32_t> dirty_;  ///< reused dirty-index scratch
  SoaSlab<G> slab_;                   ///< reused gather/eval slab

  SoaRoute soa_route_ = SoaRoute::kAuto;
  const void* route_problem_ = nullptr;  ///< calibration cache key ...
  std::size_t route_dim_ = 0;            ///< ... (problem address, dimension)
  bool route_batched_ = true;            ///< cached kAuto verdict
};

}  // namespace pga
