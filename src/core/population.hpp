#pragma once
// Individuals and populations.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "exec/parallelism.hpp"

namespace pga {

/// A genome paired with its (lazily computed) fitness.
template <class G>
struct Individual {
  G genome{};
  double fitness = -std::numeric_limits<double>::infinity();
  bool evaluated = false;

  Individual() = default;
  explicit Individual(G g) : genome(std::move(g)) {}
  Individual(G g, double f) : genome(std::move(g)), fitness(f), evaluated(true) {}
};

/// A population is a vector of individuals plus bookkeeping helpers.  It is a
/// plain container: evolution engines own the update logic, demes own the
/// migration logic.
template <class G>
class Population {
 public:
  using IndividualT = Individual<G>;

  Population() = default;
  explicit Population(std::vector<IndividualT> members)
      : members_(std::move(members)) {}

  /// Builds a population of `n` random genomes via `make(rng)`.
  template <class MakeFn>
  [[nodiscard]] static Population random(std::size_t n, MakeFn&& make,
                                         Rng& rng) {
    std::vector<IndividualT> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) members.emplace_back(make(rng));
    return Population(std::move(members));
  }

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  [[nodiscard]] IndividualT& operator[](std::size_t i) { return members_[i]; }
  [[nodiscard]] const IndividualT& operator[](std::size_t i) const {
    return members_[i];
  }

  [[nodiscard]] auto begin() noexcept { return members_.begin(); }
  [[nodiscard]] auto end() noexcept { return members_.end(); }
  [[nodiscard]] auto begin() const noexcept { return members_.begin(); }
  [[nodiscard]] auto end() const noexcept { return members_.end(); }

  [[nodiscard]] std::vector<IndividualT>& members() noexcept { return members_; }
  [[nodiscard]] const std::vector<IndividualT>& members() const noexcept {
    return members_;
  }

  void push_back(IndividualT ind) { members_.push_back(std::move(ind)); }

  /// Evaluates every not-yet-evaluated member against `problem`; returns the
  /// number of fitness evaluations performed.
  std::size_t evaluate_all(const Problem<G>& problem) {
    std::size_t evals = 0;
    for (auto& ind : members_) {
      if (!ind.evaluated) {
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
        ++evals;
      }
    }
    return evals;
  }

  /// Executor-aware evaluation: gathers the indices of not-yet-evaluated
  /// members first, then dispatches only those through `par.for_range` in
  /// cache-friendly contiguous batches — workers never branch on the
  /// `evaluated` flag (see BM_EvaluateAllSparse for the dense/sparse delta).
  /// Requires `problem.fitness` to be thread-compatible (pure, or internally
  /// synchronized): chunks call it concurrently from pool lanes.  Results
  /// are bit-identical to the sequential overload at any thread count —
  /// each dirty individual is evaluated exactly once, in place, and no RNG
  /// is consumed.  With an inline executor and no tracer this forwards to
  /// the plain loop above.
  std::size_t evaluate_all(const Problem<G>& problem,
                           const exec::Parallelism& par,
                           std::size_t grain = 0) {
    if (!par.parallel() && !par.tracer()) return evaluate_all(problem);
    std::vector<std::uint32_t> dirty;
    dirty.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i)
      if (!members_[i].evaluated)
        dirty.push_back(static_cast<std::uint32_t>(i));
    if (dirty.empty()) return 0;
    const obs::Tracer& trace = par.tracer();
    IndividualT* const m = members_.data();
    const std::uint32_t* const idx = dirty.data();
    par.for_range(
        0, dirty.size(), grain,
        [&](std::size_t lo, std::size_t hi, int lane) {
          if (trace) trace.span_begin(lane, par.now(), "compute");
          for (std::size_t k = lo; k < hi; ++k) {
            IndividualT& ind = m[idx[k]];
            ind.fitness = problem.fitness(ind.genome);
            ind.evaluated = true;
          }
          if (trace) {
            const double t1 = par.now();
            trace.evaluation_batch(lane, t1, hi - lo, "eval_chunk");
            trace.span_end(lane, t1, "compute");
          }
        });
    return dirty.size();
  }

  /// Index of the best (highest-fitness) individual.  Population must be
  /// non-empty and evaluated.
  [[nodiscard]] std::size_t best_index() const {
    if (members_.empty()) throw std::logic_error("best_index on empty population");
    std::size_t best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness > members_[best].fitness) best = i;
    return best;
  }

  [[nodiscard]] const IndividualT& best() const { return members_[best_index()]; }

  [[nodiscard]] std::size_t worst_index() const {
    if (members_.empty()) throw std::logic_error("worst_index on empty population");
    std::size_t worst = 0;
    for (std::size_t i = 1; i < members_.size(); ++i)
      if (members_[i].fitness < members_[worst].fitness) worst = i;
    return worst;
  }

  [[nodiscard]] double best_fitness() const { return best().fitness; }

  [[nodiscard]] double mean_fitness() const {
    double s = 0.0;
    for (const auto& ind : members_) s += ind.fitness;
    return members_.empty() ? 0.0 : s / static_cast<double>(members_.size());
  }

  /// Fitness values of all members in order (used by index-based selectors).
  [[nodiscard]] std::vector<double> fitness_values() const {
    std::vector<double> f;
    f.reserve(members_.size());
    for (const auto& ind : members_) f.push_back(ind.fitness);
    return f;
  }

  /// Sorts members by descending fitness (best first).
  void sort_descending() {
    std::sort(members_.begin(), members_.end(),
              [](const IndividualT& a, const IndividualT& b) {
                return a.fitness > b.fitness;
              });
  }

 private:
  std::vector<IndividualT> members_;
};

}  // namespace pga
