#pragma once
// Adaptive parameter control.
//
// The survey's perspectives section anticipates "operator theories" and
// adaptive working models; the classic controllers of the era are
// implemented here:
//   * OneFifthRule — Rechenberg's 1/5-success step-size control for
//     Gaussian mutation (grow sigma when >1/5 of mutations succeed);
//   * AnnealingSchedule — exponential decay for mutation rates or Boltzmann
//     temperatures;
//   * AdaptiveGaussianMutation — a Mutation<RealVector> whose sigma is
//     driven by a shared OneFifthRule controller.

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/genome.hpp"
#include "core/mutation.hpp"

namespace pga {

/// Rechenberg's 1/5-success rule: after each window of `window` trials,
/// multiply sigma by `up` if the success fraction exceeded 1/5, by `down`
/// otherwise.  Thread-compatible only for single-threaded use (one
/// controller per deme).
class OneFifthRule {
 public:
  OneFifthRule(double initial_sigma, double sigma_min, double sigma_max,
               std::size_t window = 50, double up = 1.22, double down = 0.82)
      : sigma_(initial_sigma),
        min_(sigma_min),
        max_(sigma_max),
        window_(window),
        up_(up),
        down_(down) {
    if (sigma_min <= 0.0 || sigma_max < sigma_min)
      throw std::invalid_argument("invalid sigma bounds");
    if (window == 0) throw std::invalid_argument("window must be positive");
  }

  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  /// Records one mutation outcome; adapts at window boundaries.
  void record(bool success) {
    ++trials_;
    successes_ += success;
    if (trials_ < window_) return;
    const double rate =
        static_cast<double>(successes_) / static_cast<double>(trials_);
    sigma_ = std::clamp(sigma_ * (rate > 0.2 ? up_ : down_), min_, max_);
    trials_ = 0;
    successes_ = 0;
  }

 private:
  double sigma_;
  double min_;
  double max_;
  std::size_t window_;
  double up_;
  double down_;
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Exponential annealing schedule: value(t) = v0 * decay^t, floored.
class AnnealingSchedule {
 public:
  AnnealingSchedule(double initial, double decay, double floor)
      : value_(initial), decay_(decay), floor_(floor) {
    if (decay <= 0.0 || decay > 1.0)
      throw std::invalid_argument("decay must be in (0, 1]");
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  void step() { value_ = std::max(floor_, value_ * decay_); }

 private:
  double value_;
  double decay_;
  double floor_;
};

/// Gaussian mutation whose step size follows a shared 1/5-rule controller.
/// Callers report success/failure through `controller->record` after
/// evaluating the mutant; the helper `make_adaptive_mutation` returns the
/// operator plus the shared controller handle.
[[nodiscard]] inline std::pair<Mutation<RealVector>,
                               std::shared_ptr<OneFifthRule>>
make_adaptive_mutation(Bounds bounds, double initial_sigma_fraction = 0.1,
                       std::size_t window = 50) {
  // Sigma is expressed as a fraction of each dimension's span.
  auto controller = std::make_shared<OneFifthRule>(
      initial_sigma_fraction, 1e-5, 0.5, window);
  Mutation<RealVector> op = [bounds = std::move(bounds),
                             controller](RealVector& g, Rng& rng) {
    const double p = 1.0 / static_cast<double>(std::max<std::size_t>(1, g.size()));
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!rng.bernoulli(p)) continue;
      const double sigma = controller->sigma() * bounds.span(i);
      g[i] = bounds.clamp(i, g[i] + rng.gaussian(0.0, sigma));
    }
  };
  return {std::move(op), std::move(controller)};
}

}  // namespace pga
