// Model-engine hot loops.  See core/model_kernels.hpp for the contract.
//
// The Bernoulli comparison is CounterRng::bernoulli verbatim: the splitmix64
// finalizer at counter c*dim+i, then double(bits >> 11) < p * 2^53 with the
// threshold hoisted per locus row.  The finalizer has no sequential state,
// so the kSoaLanes inner loops vectorize (GCC synthesizes the 64-bit
// multiplies from 32-bit halves under AVX2 — still a large win over any
// stateful generator, which serializes the whole row).

#include "core/model_kernels.hpp"

#include "core/rng.hpp"
#include "core/soa.hpp"

// Same runtime ISA dispatch as the fitness kernels (problems/kernels.cpp):
// GCC/x86-64 only, disabled under sanitizers, no FMA contraction concerns
// here (integer + exact double compares only).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define PGA_MODEL_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define PGA_MODEL_CLONES
#endif

namespace pga::model_detail {

namespace {
constexpr std::size_t W = kSoaLanes;
}  // namespace

PGA_MODEL_CLONES
void sample_rows(const double* p, std::size_t i0, std::size_t i1,
                 std::size_t dim, std::uint64_t key, std::uint64_t base,
                 std::uint8_t* block) noexcept {
  for (std::size_t i = i0; i < i1; ++i) {
    const double pt = p[i] * 0x1.0p53;
    std::uint8_t* row = block + i * W;
    const std::uint64_t row_ctr = base * dim + i;
    for (std::size_t l = 0; l < W; ++l) {
      const std::uint64_t z = CounterRng::bits_at(key, row_ctr + l * dim);
      row[l] = static_cast<double>(z >> 11) < pt ? 1 : 0;
    }
  }
}

void sample_pack(const double* p, std::size_t dim, std::uint64_t key,
                 std::size_t c0, std::size_t c1, std::size_t i0,
                 std::size_t i1, std::uint8_t* out) noexcept {
  std::uint8_t byte = 0;
  unsigned nbits = 0;
  for (std::size_t c = c0; c < c1; ++c) {
    const std::uint64_t cand_ctr = static_cast<std::uint64_t>(c) * dim;
    for (std::size_t i = i0; i < i1; ++i) {
      const std::uint64_t z = CounterRng::bits_at(key, cand_ctr + i);
      const std::uint8_t bit =
          static_cast<double>(z >> 11) < p[i - i0] * 0x1.0p53 ? 1 : 0;
      byte = static_cast<std::uint8_t>(byte | (bit << nbits));
      if (++nbits == 8) {
        *out++ = byte;
        byte = 0;
        nbits = 0;
      }
    }
  }
  if (nbits != 0) *out = byte;
}

void unpack_to_slab(const std::uint8_t* packed, std::size_t c0, std::size_t c1,
                    std::size_t i0, std::size_t i1, std::size_t dim,
                    std::uint8_t* slab) noexcept {
  std::size_t k = 0;
  for (std::size_t c = c0; c < c1; ++c) {
    std::uint8_t* lane = slab + (c / W) * dim * W + (c % W);
    for (std::size_t i = i0; i < i1; ++i, ++k)
      lane[i * W] = (packed[k >> 3] >> (k & 7)) & 1;
  }
}

PGA_MODEL_CLONES
void cga_accumulate(const std::uint8_t* slab, std::size_t dim,
                    std::size_t blocks, const std::uint8_t* winner_hi,
                    const std::uint8_t* live, std::size_t i0, std::size_t i1,
                    std::int32_t* delta) noexcept {
  constexpr std::size_t P = W / 2;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint8_t* base = slab + b * dim * W;
    const std::uint8_t* hi = winner_hi + b * P;
    const std::uint8_t* lv = live + b * P;
    for (std::size_t i = i0; i < i1; ++i) {
      const std::uint8_t* row = base + i * W;
      std::int32_t d = 0;
      for (std::size_t j = 0; j < P; ++j) {
        const int a = row[2 * j];
        const int c = row[2 * j + 1];
        // Winner's bit, branch-free; pairs whose bits agree (a ^ c == 0) and
        // dead pairs contribute nothing.
        const int wb = a + static_cast<int>(hi[j]) * (c - a);
        d += static_cast<int>(lv[j]) * (a ^ c) * (2 * wb - 1);
      }
      delta[i] += d;
    }
  }
}

PGA_MODEL_CLONES
void umda_count(const std::uint8_t* slab, std::size_t dim,
                const std::uint32_t* sel, std::size_t nsel, std::size_t i0,
                std::size_t i1, std::uint32_t* ones) noexcept {
  for (std::size_t s = 0; s < nsel; ++s) {
    const std::size_t c = sel[s];
    const std::uint8_t* lane = slab + (c / W) * dim * W + (c % W);
    for (std::size_t i = i0; i < i1; ++i) ones[i] += lane[i * W];
  }
}

}  // namespace pga::model_detail
