#pragma once
// Deterministic, vectorizable transcendental helpers.
//
// The SoA fitness kernels (problems/kernels.cpp) vectorize *across genomes*
// while the evaluation contract demands results bit-identical to the scalar
// path (tests/test_soa.cpp).  libm's cos/sin cannot satisfy both at once:
// glibc gives no guarantee that a vectorized approximation matches the
// scalar call.  So both paths share the branch-free polynomial routines
// below — two-step Cody–Waite range reduction onto [-pi/4, pi/4] plus the
// classic Cephes minimax polynomials (public-domain constants, ~1-2 ulp over
// the benchmark domains, exact at 0) — built from IEEE add/mul/convert and
// lane-wise selects only, so the identical operation sequence runs per
// genome at any SIMD width.
//
// Contraction caveat: a fused multiply-add would make contracted and
// non-contracted compiles disagree, so the build forces -ffp-contract=off
// (top-level CMakeLists) and the runtime-dispatched kernel clones stop at
// AVX2 without FMA.

#include <cstdint>

namespace pga::fastmath {

namespace detail {

inline constexpr double kInvPio2 = 6.36619772367581382433e-01;  // 2/pi
// Cody–Waite split of pi/2 (Cephes pi/4 split, doubled — exact since the
// scaling is a power of two): pi/2 = kDP1 + kDP2 + kDP3.
inline constexpr double kDP1 = 1.57079625129699707031e+00;
inline constexpr double kDP2 = 7.54978941586159635335e-08;
inline constexpr double kDP3 = 5.39030285815811905290e-15;
// Quotient clamp: keeps the double->int32 conversion defined for wild
// inputs (results out there are meaningless but stay deterministic).
inline constexpr double kMaxQuotient = 2.0e9;

// sin(r) = r + r^3 P(r^2) on [-pi/4, pi/4] (Cephes sincof).
[[nodiscard]] inline double sin_poly(double r, double z) noexcept {
  double p = 1.58962301576546568060e-10;
  p = p * z + -2.50507477628578072866e-08;
  p = p * z + 2.75573136213857245213e-06;
  p = p * z + -1.98412698295895385996e-04;
  p = p * z + 8.33333333332211858878e-03;
  p = p * z + -1.66666666666666307295e-01;
  return r + r * z * p;
}

// cos(r) = 1 - r^2/2 + r^4 Q(r^2) on [-pi/4, pi/4] (Cephes coscof).
[[nodiscard]] inline double cos_poly(double z) noexcept {
  double p = -1.13585365213876817300e-11;
  p = p * z + 2.08757008419747316778e-09;
  p = p * z + -2.75573141792967388112e-07;
  p = p * z + 2.48015872888517179954e-05;
  p = p * z + -1.38888888888730564116e-03;
  p = p * z + 4.16666666666665929218e-02;
  return 1.0 - 0.5 * z + z * z * p;
}

struct Reduced {
  double r;         ///< residual in [-pi/4, pi/4]
  std::int32_t q;   ///< quadrant (k mod 4)
};

[[nodiscard]] inline Reduced reduce(double x) noexcept {
  double t = x * kInvPio2;
  t = t > kMaxQuotient ? kMaxQuotient : t;
  t = t < -kMaxQuotient ? -kMaxQuotient : t;
  // Round half away from zero; the tie case only shifts the residual by an
  // ulp of pi/4, well inside the polynomials' domain.
  const double bias = t >= 0.0 ? 0.5 : -0.5;
  const auto k = static_cast<std::int32_t>(t + bias);
  const double kd = static_cast<double>(k);
  double r = x - kd * kDP1;
  r -= kd * kDP2;
  r -= kd * kDP3;
  return {r, k & 3};
}

}  // namespace detail

/// Branch-free cos; exact at 0 (cos(0) == 1.0 so optimum checks stay exact).
[[nodiscard]] inline double cos(double x) noexcept {
  const auto [r, q] = detail::reduce(x);
  const double z = r * r;
  const double sp = detail::sin_poly(r, z);
  const double cp = detail::cos_poly(z);
  // cos(r + q*pi/2): q=0 -> cos r, 1 -> -sin r, 2 -> -cos r, 3 -> sin r.
  const double mag = (q & 1) != 0 ? sp : cp;
  const bool negate = ((q + 1) & 2) != 0;  // q in {1, 2}
  return negate ? -mag : mag;
}

/// Branch-free sin; exact at 0.
[[nodiscard]] inline double sin(double x) noexcept {
  const auto [r, q] = detail::reduce(x);
  const double z = r * r;
  const double sp = detail::sin_poly(r, z);
  const double cp = detail::cos_poly(z);
  // sin(r + q*pi/2): q=0 -> sin r, 1 -> cos r, 2 -> -sin r, 3 -> -cos r.
  const double mag = (q & 1) != 0 ? cp : sp;
  const bool negate = (q & 2) != 0;  // q in {2, 3}
  return negate ? -mag : mag;
}

/// floor() for |x| < 2^31 as truncate-and-adjust: integer convert plus one
/// lane-wise select, the form both the Step kernel and its scalar objective
/// share so they vectorize identically.
[[nodiscard]] inline double floor_small(double x) noexcept {
  const double td = static_cast<double>(static_cast<std::int32_t>(x));
  return td - static_cast<double>(x < td);
}

}  // namespace pga::fastmath
