#pragma once
// Fine-grained (cellular) evolution scheme.
//
// The population lives on a toroidal 2-D grid; each cell mates only within a
// small neighborhood.  Implements the synchronous update plus the four
// asynchronous sweep policies analysed by Giacobini, Alba & Tomassini (2003):
// fixed line sweep, fixed random sweep, new random sweep and uniform choice.
// Experiment E4 measures their selection-pressure ordering via takeover
// times; `selection_only` turns off variation for exactly that study.

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/selection.hpp"

namespace pga {

/// Neighborhood shapes from the cellular-EA literature.  Lk/Ck follow the
/// usual naming: L5 = von Neumann, C9 = Moore, L9 = axial radius 2,
/// C13 = Moore plus axial cells at distance 2.
enum class Neighborhood { kLinear5, kCompact9, kLinear9, kCompact13 };

/// Cell-update orders (Giacobini et al. 2003).
enum class UpdatePolicy {
  kSynchronous,       ///< all cells computed from the old grid, then committed
  kFixedLineSweep,    ///< async, row-major order, same every sweep
  kFixedRandomSweep,  ///< async, one random permutation fixed at construction
  kNewRandomSweep,    ///< async, fresh random permutation each sweep
  kUniformChoice      ///< async, n cells drawn uniformly with replacement
};

[[nodiscard]] constexpr const char* to_string(UpdatePolicy p) noexcept {
  switch (p) {
    case UpdatePolicy::kSynchronous: return "synchronous";
    case UpdatePolicy::kFixedLineSweep: return "fixed-line-sweep";
    case UpdatePolicy::kFixedRandomSweep: return "fixed-random-sweep";
    case UpdatePolicy::kNewRandomSweep: return "new-random-sweep";
    case UpdatePolicy::kUniformChoice: return "uniform-choice";
  }
  return "?";
}

/// What to do with the offspring produced at a cell.
enum class ReplacePolicy { kAlways, kIfBetter, kIfBetterOrEqual };

struct CellularConfig {
  std::size_t width = 0;
  std::size_t height = 0;
  Neighborhood neighborhood = Neighborhood::kLinear5;
  UpdatePolicy update = UpdatePolicy::kSynchronous;
  ReplacePolicy replace = ReplacePolicy::kIfBetterOrEqual;
  /// Takeover-study mode: the offspring is a copy of the neighborhood's
  /// selected individual; no crossover/mutation, no evaluations.
  bool selection_only = false;
};

/// Toroidal grid geometry helper, shared with the parallel cellular model.
class TorusGrid {
 public:
  TorusGrid(std::size_t width, std::size_t height)
      : width_(width), height_(height) {
    if (width == 0 || height == 0)
      throw std::invalid_argument("TorusGrid dimensions must be positive");
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t cells() const noexcept { return width_ * height_; }

  [[nodiscard]] std::size_t index(std::size_t x, std::size_t y) const noexcept {
    return y * width_ + x;
  }
  [[nodiscard]] std::size_t x_of(std::size_t i) const noexcept { return i % width_; }
  [[nodiscard]] std::size_t y_of(std::size_t i) const noexcept { return i / width_; }

  /// Cell at (x + dx, y + dy) with toroidal wraparound.
  [[nodiscard]] std::size_t wrap(std::size_t i, long long dx,
                                 long long dy) const noexcept {
    const auto w = static_cast<long long>(width_);
    const auto h = static_cast<long long>(height_);
    const long long x = (static_cast<long long>(x_of(i)) + dx % w + w) % w;
    const long long y = (static_cast<long long>(y_of(i)) + dy % h + h) % h;
    return index(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
  }

  /// Neighborhood member indices, center first.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i,
                                                   Neighborhood shape) const {
    std::vector<std::size_t> out;
    auto add = [&](long long dx, long long dy) { out.push_back(wrap(i, dx, dy)); };
    add(0, 0);
    switch (shape) {
      case Neighborhood::kLinear5:
        add(1, 0); add(-1, 0); add(0, 1); add(0, -1);
        break;
      case Neighborhood::kCompact9:
        for (long long dy = -1; dy <= 1; ++dy)
          for (long long dx = -1; dx <= 1; ++dx)
            if (dx != 0 || dy != 0) add(dx, dy);
        break;
      case Neighborhood::kLinear9:
        add(1, 0); add(-1, 0); add(0, 1); add(0, -1);
        add(2, 0); add(-2, 0); add(0, 2); add(0, -2);
        break;
      case Neighborhood::kCompact13:
        for (long long dy = -1; dy <= 1; ++dy)
          for (long long dx = -1; dx <= 1; ++dx)
            if (dx != 0 || dy != 0) add(dx, dy);
        add(2, 0); add(-2, 0); add(0, 2); add(0, -2);
        break;
    }
    return out;
  }

 private:
  std::size_t width_;
  std::size_t height_;
};

/// Cellular GA as an EvolutionScheme: one `step` is one full sweep of the
/// grid (population size must equal width*height).
template <class G>
class CellularScheme final : public EvolutionScheme<G> {
 public:
  CellularScheme(CellularConfig config, Operators<G> ops, Rng sweep_rng)
      : config_(config),
        grid_(config.width, config.height),
        ops_(std::move(ops)),
        sweep_rng_(sweep_rng) {
    fixed_order_.resize(grid_.cells());
    std::iota(fixed_order_.begin(), fixed_order_.end(), std::size_t{0});
    if (config_.update == UpdatePolicy::kFixedRandomSweep)
      shuffle(fixed_order_, sweep_rng_);
  }

  std::size_t step(Population<G>& pop, const Problem<G>& problem,
                   Rng& rng) override {
    if (pop.size() != grid_.cells())
      throw std::invalid_argument("cellular population size != grid cells");

    std::size_t evals = 0;
    if (config_.update == UpdatePolicy::kSynchronous) {
      // Compute every offspring against the frozen old grid, then commit.
      std::vector<Individual<G>> next(pop.members());
      for (std::size_t i = 0; i < grid_.cells(); ++i) {
        auto child = make_offspring(pop, problem, i, rng, evals);
        commit(next[i], std::move(child));
      }
      pop = Population<G>(std::move(next));
    } else {
      for (std::size_t i : sweep_order(rng)) {
        auto child = make_offspring(pop, problem, i, rng, evals);
        commit(pop[i], std::move(child));
      }
    }
    return evals;
  }

  [[nodiscard]] std::string name() const override {
    return std::string("cellular/") + to_string(config_.update);
  }

  [[nodiscard]] const TorusGrid& grid() const noexcept { return grid_; }

 private:
  static void shuffle(std::vector<std::size_t>& v, Rng& rng) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[rng.index(i)]);
  }

  [[nodiscard]] std::vector<std::size_t> sweep_order(Rng& rng) {
    switch (config_.update) {
      case UpdatePolicy::kSynchronous:
      case UpdatePolicy::kFixedLineSweep:
      case UpdatePolicy::kFixedRandomSweep:
        return fixed_order_;
      case UpdatePolicy::kNewRandomSweep: {
        std::vector<std::size_t> order(grid_.cells());
        std::iota(order.begin(), order.end(), std::size_t{0});
        shuffle(order, rng);
        return order;
      }
      case UpdatePolicy::kUniformChoice: {
        std::vector<std::size_t> order(grid_.cells());
        for (auto& c : order) c = rng.index(grid_.cells());
        return order;
      }
    }
    return fixed_order_;
  }

  /// Produces the (evaluated) offspring for cell `i`.
  [[nodiscard]] Individual<G> make_offspring(const Population<G>& pop,
                                             const Problem<G>& problem,
                                             std::size_t i, Rng& rng,
                                             std::size_t& evals) {
    const auto hood = grid_.neighbors(i, config_.neighborhood);
    std::vector<double> local_fitness;
    local_fitness.reserve(hood.size());
    for (std::size_t n : hood) local_fitness.push_back(pop[n].fitness);

    if (config_.selection_only) {
      const std::size_t pick = ops_.select(local_fitness, rng);
      return pop[hood[pick]];  // copy; already evaluated
    }

    // Standard cEA recombination: the center mates with a neighborhood-
    // selected partner.
    const std::size_t mate = hood[ops_.select(local_fitness, rng)];
    G child = pop[i].genome;
    if (rng.bernoulli(ops_.crossover_rate)) {
      auto [a, b] = ops_.cross(pop[i].genome, pop[mate].genome, rng);
      child = rng.bernoulli(0.5) ? std::move(a) : std::move(b);
    }
    ops_.mutate(child, rng);
    Individual<G> ind(std::move(child));
    ind.fitness = problem.fitness(ind.genome);
    ind.evaluated = true;
    ++evals;
    return ind;
  }

  void commit(Individual<G>& slot, Individual<G> child) const {
    switch (config_.replace) {
      case ReplacePolicy::kAlways:
        slot = std::move(child);
        break;
      case ReplacePolicy::kIfBetter:
        if (child.fitness > slot.fitness) slot = std::move(child);
        break;
      case ReplacePolicy::kIfBetterOrEqual:
        if (child.fitness >= slot.fitness) slot = std::move(child);
        break;
    }
  }

  CellularConfig config_;
  TorusGrid grid_;
  Operators<G> ops_;
  Rng sweep_rng_;
  std::vector<std::size_t> fixed_order_;
};

}  // namespace pga
