#pragma once
// Hot loops for the model-based engines (core/model_ga.hpp): counter-based
// Bernoulli sampling straight into AoSoA slabs / packed wire buffers, plus
// the cGA tournament-delta and UMDA frequency-count accumulators.
//
// Everything here is a pure function of (model, key, counters): a draw for
// (candidate c, locus i) always uses counter c * dim + i under the epoch
// key, so any partition of the work across threads, SIMD lanes, or cluster
// shards produces identical bits — the bit-identity and failure-regeneration
// guarantees of the sharded mode rest on these signatures.  Definitions live
// in core/model_sample.cpp, compiled -O3 with runtime ISA clones like the
// fitness kernels (see src/CMakeLists.txt).

#include <cstddef>
#include <cstdint>

namespace pga::model_detail {

/// Fills rows [i0, i1) of one AoSoA block (base pointer `block`, rows of
/// kSoaLanes bytes) whose lanes hold candidates base .. base+kSoaLanes-1:
/// lane l, row i gets CounterRng{key}.bernoulli(p[i], (base+l)*dim + i).
void sample_rows(const double* p, std::size_t i0, std::size_t i1,
                 std::size_t dim, std::uint64_t key, std::uint64_t base,
                 std::uint8_t* block) noexcept;

/// Bit-packs the same draws for candidates [c0, c1) x loci [i0, i1) into
/// `out`, candidate-major, LSB-first: bit k of the stream is candidate
/// c0 + k / (i1-i0), locus i0 + k % (i1-i0).  This is the shard wire format;
/// it produces exactly the bits sample_rows would place in the slab.  `p` is
/// slice-relative — p[i - i0] is the probability of locus i — because a
/// shard owns only its slice of the model; the draw counters stay absolute.
void sample_pack(const double* p, std::size_t dim, std::uint64_t key,
                 std::size_t c0, std::size_t c1, std::size_t i0,
                 std::size_t i1, std::uint8_t* out) noexcept;

/// Inverse of sample_pack: scatters a packed candidate-major slice into the
/// AoSoA slab at `slab` (the manager assembling shard messages).
void unpack_to_slab(const std::uint8_t* packed, std::size_t c0, std::size_t c1,
                    std::size_t i0, std::size_t i1, std::size_t dim,
                    std::uint8_t* slab) noexcept;

/// cGA tournament deltas over loci [i0, i1): for every lane pair (2j, 2j+1)
/// of every block, adds +1/-1 to delta[i] where the pair's bits differ,
/// toward the winner's bit.  winner_hi[b * 8 + j] selects the winning lane
/// (1 = lane 2j+1), live[b * 8 + j] = 0 skips the pair (fitness tie or tail
/// padding).  Caller zeroes delta[i0..i1).  Integer accumulation in full
/// block order makes the result exact and independent of how callers
/// partition the locus range across threads.
void cga_accumulate(const std::uint8_t* slab, std::size_t dim,
                    std::size_t blocks, const std::uint8_t* winner_hi,
                    const std::uint8_t* live, std::size_t i0, std::size_t i1,
                    std::int32_t* delta) noexcept;

/// UMDA one-counts over loci [i0, i1) for the selected candidates sel[0..
/// nsel): ones[i] += bit(sel[s], i).  Caller zeroes ones[i0..i1).
void umda_count(const std::uint8_t* slab, std::size_t dim,
                const std::uint32_t* sel, std::size_t nsel, std::size_t i0,
                std::size_t i1, std::uint32_t* ones) noexcept;

}  // namespace pga::model_detail
