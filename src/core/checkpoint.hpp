#pragma once
// Population checkpointing.
//
// Long PGA runs on failure-prone clusters need save/restore (the
// "robustness" requirement Gagné et al. attach to any serious computing
// system for evolutionary computation).  Populations serialize through the
// same wire format messages use, with a small header (magic, version,
// count) so stale or foreign files are rejected instead of misread.

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/serialize.hpp"
#include "core/model_ga.hpp"
#include "core/population.hpp"

namespace pga {

inline constexpr std::uint32_t kCheckpointMagic = 0x50474131;  // "PGA1"
inline constexpr std::uint32_t kCheckpointVersion = 1;

// Model-based engines checkpoint a probability vector, not a population;
// a distinct magic keeps the two file kinds from being misread as each
// other.
inline constexpr std::uint32_t kModelCheckpointMagic = 0x5047414D;  // "PGAM"
inline constexpr std::uint32_t kModelCheckpointVersion = 1;

/// Serializes a population (genomes + fitness + evaluated flags).
template <class G>
[[nodiscard]] std::vector<std::uint8_t> serialize_population(
    const Population<G>& pop) {
  comm::ByteWriter w;
  w.write(kCheckpointMagic);
  w.write(kCheckpointVersion);
  w.write<std::uint64_t>(pop.size());
  for (const auto& ind : pop) comm::serialize(w, ind);
  return std::move(w).take();
}

/// Restores a population; throws std::runtime_error on malformed input.
template <class G>
[[nodiscard]] Population<G> deserialize_population(
    std::span<const std::uint8_t> bytes) {
  comm::ByteReader r(bytes);
  if (r.read<std::uint32_t>() != kCheckpointMagic)
    throw std::runtime_error("not a pgalib checkpoint");
  if (r.read<std::uint32_t>() != kCheckpointVersion)
    throw std::runtime_error("unsupported checkpoint version");
  const auto n = static_cast<std::size_t>(r.read<std::uint64_t>());
  std::vector<Individual<G>> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Individual<G> ind;
    comm::deserialize(r, ind);
    members.push_back(std::move(ind));
  }
  if (!r.exhausted()) throw std::runtime_error("trailing checkpoint bytes");
  return Population<G>(std::move(members));
}

/// Writes a checkpoint file (atomically via rename is the caller's concern;
/// this is the plain write).
template <class G>
void save_checkpoint(const Population<G>& pop, const std::string& path) {
  const auto bytes = serialize_population(pop);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open checkpoint for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("checkpoint write failed: " + path);
}

/// Serializes a model-engine state (probability vector + progress + best).
/// Restoring it into ModelGa::restore resumes the exact trajectory: sampling
/// is a pure function of (seed, epoch), so the continuation is bit-identical
/// to a run that never stopped (asserted in tests/test_model.cpp).
[[nodiscard]] inline std::vector<std::uint8_t> serialize_model_state(
    const ModelState& st) {
  comm::ByteWriter w;
  w.write(kModelCheckpointMagic);
  w.write(kModelCheckpointVersion);
  w.write_vector(st.p);
  w.write<std::uint64_t>(st.epoch);
  w.write<std::uint64_t>(st.evaluations);
  w.write<double>(st.best_fitness);
  w.write_vector(st.best_genome.bits);
  return std::move(w).take();
}

/// Restores a model state; throws std::runtime_error on malformed input.
[[nodiscard]] inline ModelState deserialize_model_state(
    std::span<const std::uint8_t> bytes) {
  comm::ByteReader r(bytes);
  if (r.read<std::uint32_t>() != kModelCheckpointMagic)
    throw std::runtime_error("not a pgalib model checkpoint");
  if (r.read<std::uint32_t>() != kModelCheckpointVersion)
    throw std::runtime_error("unsupported model checkpoint version");
  ModelState st;
  st.p = r.read_vector<double>();
  st.epoch = r.read<std::uint64_t>();
  st.evaluations = r.read<std::uint64_t>();
  st.best_fitness = r.read<double>();
  st.best_genome.bits = r.read_vector<std::uint8_t>();
  if (!r.exhausted())
    throw std::runtime_error("trailing model checkpoint bytes");
  return st;
}

/// Writes a model-state checkpoint file.
inline void save_model_checkpoint(const ModelState& st,
                                  const std::string& path) {
  const auto bytes = serialize_model_state(st);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("cannot open checkpoint for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("checkpoint write failed: " + path);
}

/// Reads a model-state checkpoint file.
[[nodiscard]] inline ModelState load_model_checkpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open checkpoint: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("checkpoint read failed: " + path);
  return deserialize_model_state(bytes);
}

/// Reads a checkpoint file.
template <class G>
[[nodiscard]] Population<G> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open checkpoint: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("checkpoint read failed: " + path);
  return deserialize_population<G>(bytes);
}

}  // namespace pga
