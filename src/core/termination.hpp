#pragma once
// Termination criteria shared by all engines and parallel models.

#include <cstddef>
#include <limits>
#include <optional>

namespace pga {

/// Stop conditions: a run halts when ANY enabled limit is reached.  Targets
/// are compared with a small tolerance so "reached the known optimum" is
/// robust to floating-point accumulation.
struct StopCondition {
  std::size_t max_generations = 1000;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  std::optional<double> target_fitness{};  ///< stop when best >= target - tol
  double target_tolerance = 1e-9;
  /// Stop after this many consecutive generations without best-fitness
  /// improvement (0 disables stagnation detection).
  std::size_t stagnation_generations = 0;

  [[nodiscard]] bool target_reached(double best) const noexcept {
    return target_fitness && best >= *target_fitness - target_tolerance;
  }
};

}  // namespace pga
