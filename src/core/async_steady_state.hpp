#pragma once
// Asynchronous completion-driven steady-state engine.
//
// The synchronous SteadyStateScheme evaluates each offspring inline: variation
// cannot start offspring k+1 until offspring k's fitness call returns.  This
// engine overlaps them.  Selection and variation run on the engine thread and
// stage offspring into 16-lane micro-batches; the moment a batch fills it is
// dispatched to the work-stealing pool via exec::AsyncEvalPipeline, and the
// engine immediately stages the next batch against the *current* fitness
// snapshot.  Completions are folded (replace-worst-if-better) in whatever
// order the pool finishes them.  A bounded in-flight window (max_in_flight
// batches) provides backpressure, so the selection snapshot never lags more
// than window * batch_size evaluations behind the population.
//
// Batches are staged *atomically*: all offspring of one batch are generated
// back-to-back with no folds in between.  Variation costs microseconds while
// evaluations cost milliseconds in any workload where this engine matters, so
// atomic fill adds negligible latency — and it is what makes replay tractable:
// the engine's RNG trajectory is then fully determined by the *order* of
// dispatch and fold operations at batch granularity.
//
// Deterministic replay.  A live run records its logical schedule — the
// program-order sequence of dispatch(id, count) and complete(id) operations on
// the engine thread — both in the result (`schedule`) and, when tracing, as
// kAsyncDispatch / kAsyncComplete events (msg_id = batch id).  Replaying the
// schedule against the same seed and initial population regenerates every
// offspring bit-identically (same RNG draws against the same fitness
// snapshots), evaluates inline through the same evaluate_batch entry point,
// and folds in the recorded order, reproducing the final population, best
// individual and evaluation counts exactly.  async_schedule_from_log() lifts
// a schedule back out of a trace, so a dumped JSON trace is a replayable
// artifact and pga_doctor can audit window invariants offline.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/termination.hpp"
#include "exec/async_pipeline.hpp"
#include "exec/parallelism.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"

namespace pga {

/// One entry of the logical async schedule, in engine-thread program order.
struct AsyncOp {
  enum class Kind : std::uint8_t {
    kDispatch,  ///< a batch of `count` offspring was generated and dispatched
    kComplete,  ///< batch `id` was folded into the population
  };
  Kind kind = Kind::kDispatch;
  std::uint64_t id = 0;
  std::uint32_t count = 0;

  friend bool operator==(const AsyncOp& a, const AsyncOp& b) noexcept {
    return a.kind == b.kind && a.id == b.id && a.count == b.count;
  }
};

template <class G>
struct AsyncConfig {
  Operators<G> ops{};
  /// max_generations / max_evaluations / target_fitness are honoured
  /// (generations = folded evaluations / pop.size()); stagnation_generations
  /// is ignored — there is no generation boundary to measure stagnation at.
  StopCondition stop{};
  std::size_t batch_size = kSoaLanes;
  std::size_t max_in_flight = 4;  ///< bounded window, in batches
  int rank = 0;                   ///< rank stamped on engine-side trace events
  obs::Tracer trace{};
  /// When set, the engine consumes this recorded schedule instead of the live
  /// pipeline: offspring are regenerated from the RNG and evaluated inline in
  /// the recorded order.  Stop conditions are ignored — the schedule IS the
  /// run.  The result is bit-identical to the run that recorded it.
  const std::vector<AsyncOp>* replay = nullptr;
};

template <class G>
struct AsyncRunResult {
  Individual<G> best{};
  std::size_t generations = 0;  ///< folded evaluations / pop.size()
  std::size_t evaluations = 0;
  bool reached_target = false;
  std::size_t evals_to_target = 0;
  /// Logical dispatch/fold order; feed back via AsyncConfig::replay.
  std::vector<AsyncOp> schedule;
};

/// Extracts the replay schedule from a trace: the engine emits async events in
/// program order on its own rank, and both EventLog::snapshot and the JSON
/// round-trip preserve per-rank order, so the filtered subsequence is the
/// schedule.
[[nodiscard]] inline std::vector<AsyncOp> async_schedule_from_log(
    const obs::EventLog& log, int rank = 0) {
  std::vector<AsyncOp> ops;
  for (const obs::Event& e : log.snapshot()) {
    if (e.rank != rank) continue;
    if (e.kind == obs::EventKind::kAsyncDispatch) {
      ops.push_back({AsyncOp::Kind::kDispatch, e.msg_id,
                     static_cast<std::uint32_t>(e.count)});
    } else if (e.kind == obs::EventKind::kAsyncComplete) {
      ops.push_back({AsyncOp::Kind::kComplete, e.msg_id,
                     static_cast<std::uint32_t>(e.count)});
    }
  }
  return ops;
}

/// Runs the asynchronous steady-state engine on `pop` until `cfg.stop` fires
/// (live mode) or the recorded schedule is exhausted (replay mode).  The
/// initial full-population evaluation happens first, through the executor, and
/// counts toward the evaluation budget exactly as in run().
template <class G>
AsyncRunResult<G> run_async_steady_state(Population<G>& pop,
                                         const Problem<G>& problem, Rng& rng,
                                         const exec::Parallelism& par,
                                         AsyncConfig<G> cfg) {
  if (pop.size() == 0)
    throw std::invalid_argument("run_async_steady_state: empty population");
  const std::size_t batch = std::max<std::size_t>(1, cfg.batch_size);

  AsyncRunResult<G> result;
  result.evaluations += pop.evaluate_all(problem, par);

  std::vector<double> fitness;
  pop.fitness_values_into(fitness);
  double best_so_far = pop.best_fitness();

  obs::GenerationProbe<G> probe(cfg.trace, cfg.rank);
  std::size_t probed_evals = 0;
  std::size_t folded = 0;  // offspring folded so far (drives generations)
  auto snapshot = [&] {
    if (!cfg.trace) return;
    // Wall timestamps, not the generation index: this is a wall-clock engine,
    // and the quality-vs-effort curves feed checkpoint-fair wall speedups.
    const double t = par.now();
    const std::size_t gen = result.generations;
    const auto [worst_i, best_i] = pop.minmax_indices();
    cfg.trace.gen_stats(cfg.rank, t, gen, result.evaluations,
                        pop[best_i].fitness, pop.mean_fitness(),
                        pop[worst_i].fitness);
    probe.observe(pop, t, gen, result.evaluations - probed_evals);
    probed_evals = result.evaluations;
  };
  snapshot();

  if (cfg.stop.target_reached(best_so_far)) {
    result.reached_target = true;
    result.evals_to_target = result.evaluations;
  }

  // Generation-equivalent evaluation budget: max_generations generations of a
  // synchronous steady-state engine would dispatch max_generations*pop.size()
  // offspring, so both limits collapse into one offspring budget.
  std::size_t budget = cfg.stop.max_evaluations == std::numeric_limits<std::size_t>::max()
                           ? cfg.stop.max_evaluations
                           : cfg.stop.max_evaluations -
                                 std::min(cfg.stop.max_evaluations, result.evaluations);
  if (cfg.stop.max_generations <
      std::numeric_limits<std::size_t>::max() / std::max<std::size_t>(pop.size(), 1))
    budget = std::min(budget, cfg.stop.max_generations * pop.size());

  // Offspring generation: RNG trajectory matches SteadyStateScheme::step
  // draw-for-draw (select i, select j, crossover bernoulli, cross draws,
  // branch-pick bernoulli, mutate) so a window of 1 batch of 1 offspring
  // walks the exact synchronous trajectory.
  G spare{};
  auto make_offspring = [&](G& child) {
    const std::size_t i = cfg.ops.select(fitness, rng);
    const std::size_t j = cfg.ops.select(fitness, rng);
    child = pop[i].genome;
    if (rng.bernoulli(cfg.ops.crossover_rate)) {
      if (cfg.ops.cross_in_place) {
        spare = pop[j].genome;
        cfg.ops.cross_in_place(child, spare, rng);
        if (!rng.bernoulli(0.5)) std::swap(child, spare);
      } else {
        auto [a, b] = cfg.ops.cross(pop[i].genome, pop[j].genome, rng);
        child = rng.bernoulli(0.5) ? std::move(a) : std::move(b);
      }
    }
    cfg.ops.mutate(child, rng);
  };

  // Fold one completed batch: replace-worst-if-better per offspring, keeping
  // the selection snapshot in sync, exactly as the synchronous scheme does.
  auto fold = [&](std::uint64_t id, std::span<const G> genomes,
                  std::span<const double> fit, std::size_t in_flight_after) {
    result.schedule.push_back(
        {AsyncOp::Kind::kComplete, id, static_cast<std::uint32_t>(genomes.size())});
    cfg.trace.async_complete(cfg.rank, cfg.trace ? par.now() : 0.0, id,
                             genomes.size(),
                             static_cast<int>(in_flight_after));
    for (std::size_t k = 0; k < genomes.size(); ++k) {
      ++result.evaluations;
      ++folded;
      const double f = fit[k];
      const std::size_t worst = pop.worst_index();
      if (f > pop[worst].fitness) {
        pop[worst].genome = genomes[k];
        pop[worst].fitness = f;
        pop[worst].evaluated = true;
        fitness[worst] = f;
      }
      if (f > best_so_far) best_so_far = f;
      if (!result.reached_target && cfg.stop.target_reached(best_so_far)) {
        result.reached_target = true;
        result.evals_to_target = result.evaluations;
      }
      if (folded % pop.size() == 0) {
        ++result.generations;
        snapshot();
      }
    }
  };

  if (cfg.replay != nullptr) {
    // -- Replay mode: consume the recorded schedule sequentially. ----------
    struct Staged {
      std::vector<G> genomes;
      std::vector<double> fitness;
    };
    std::unordered_map<std::uint64_t, Staged> in_flight;
    SoaSlab<G> slab;
    std::size_t window_peak = 0;
    for (const AsyncOp& op : *cfg.replay) {
      if (op.kind == AsyncOp::Kind::kDispatch) {
        Staged s;
        s.genomes.resize(op.count);
        s.fitness.resize(op.count);
        for (std::uint32_t k = 0; k < op.count; ++k)
          make_offspring(s.genomes[k]);
        // Same entry point the pool workers use: SoA kernel when the problem
        // has one, fitness_batch otherwise — bit-identical either way.
        evaluate_batch(problem, std::span<const G>(s.genomes), slab,
                       std::span<double>(s.fitness));
        result.schedule.push_back(op);
        cfg.trace.async_dispatch(cfg.rank, cfg.trace ? par.now() : 0.0, op.id,
                                 op.count,
                                 static_cast<int>(in_flight.size() + 1));
        in_flight.emplace(op.id, std::move(s));
        window_peak = std::max(window_peak, in_flight.size());
      } else {
        auto it = in_flight.find(op.id);
        if (it == in_flight.end())
          throw std::invalid_argument(
              "replay: complete for a batch never dispatched");
        const Staged s = std::move(it->second);
        in_flight.erase(it);
        fold(op.id, std::span<const G>(s.genomes),
             std::span<const double>(s.fitness), in_flight.size());
      }
    }
    if (!in_flight.empty())
      throw std::invalid_argument("replay: schedule left batches unfolded");
    (void)window_peak;
  } else {
    // -- Live mode: overlap staging with in-flight evaluations. ------------
    exec::AsyncEvalPipeline<G> pipe(
        problem, par,
        typename exec::AsyncEvalPipeline<G>::Config{batch, cfg.max_in_flight});
    std::size_t dispatched = 0;  // offspring handed to the pipeline
    typename exec::AsyncEvalPipeline<G>::Completed c;
    auto fold_release = [&](const typename exec::AsyncEvalPipeline<G>::Completed&
                                done) {
      fold(done.id, done.genomes, done.fitness, pipe.in_flight());
      pipe.release(done.id);
    };
    while (true) {
      // Opportunistically fold everything that already completed.
      while (pipe.try_collect(c)) fold_release(c);
      const bool want_more = !result.reached_target && dispatched < budget;
      if (!want_more) {
        if (pipe.in_flight() == 0) break;  // drained
        pipe.wait_collect(c);
        fold_release(c);
        continue;
      }
      if (!pipe.can_stage()) {  // window full: backpressure
        // The producer is blocked on the in-flight window, not computing —
        // the "window_wait" span is what SchedulerReport charges as the
        // producer-blocked fraction (window-stall evidence).
        cfg.trace.span_begin(cfg.rank, cfg.trace ? par.now() : 0.0,
                             "window_wait");
        pipe.wait_collect(c);
        cfg.trace.span_end(cfg.rank, cfg.trace ? par.now() : 0.0,
                           "window_wait");
        fold_release(c);
        continue;
      }
      // Stage one whole batch atomically (no folds mid-batch — see header).
      const std::size_t want = std::min(batch, budget - dispatched);
      for (std::size_t k = 0; k < want; ++k) {
        make_offspring(pipe.stage_slot());
        pipe.commit_slot();
      }
      const std::uint64_t id = pipe.dispatch();
      result.schedule.push_back(
          {AsyncOp::Kind::kDispatch, id, static_cast<std::uint32_t>(want)});
      cfg.trace.async_dispatch(cfg.rank, cfg.trace ? par.now() : 0.0, id, want,
                               static_cast<int>(pipe.in_flight()));
      dispatched += want;
    }
  }

  if (!result.reached_target) result.evals_to_target = result.evaluations;
  result.best = pop.best();
  return result;
}

}  // namespace pga
