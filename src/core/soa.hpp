#pragma once
// Structure-of-arrays genome slabs for batched fitness evaluation.
//
// The scalar evaluation path pays one virtual call plus a pointer chase into
// a scattered std::vector per genome — the overhead PGAPack-style batch
// interfaces exist to avoid, and the Tf term every master-slave speedup
// curve in the survey depends on.  A SoaSlab gathers a population's dirty
// genomes once per generation into a single reused buffer; kernels then
// vectorize across genomes and fitness is scattered back.
//
// Layout: AoSoA.  Genomes are packed in blocks of kSoaLanes; within a block
// the i-th element of all lanes is contiguous, i.e. element i of genome g
// lives at data[((g / L) * dim + i) * L + (g % L)] with L = kSoaLanes.  A
// kernel walks one block at a time with unit-stride rows, keeping kSoaLanes
// accumulators that the compiler maps onto SIMD registers, while each
// genome's operation order is exactly the scalar loop's — which is what
// keeps batched results bit-identical to the scalar path at any SIMD width.
// One block stays L1-resident even at dim 100 (100 rows x 128 B).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/genome.hpp"

namespace pga {

/// Genomes per AoSoA block.  16 doubles spans two AVX-512 / four AVX2 / eight
/// SSE2 registers — a multiple of every vector width we target — and one
/// block row (128 B) is exactly two cache lines.
inline constexpr std::size_t kSoaLanes = 16;

namespace detail {
/// Register-blocked 16 x dim transposes for one full AoSoA block (see
/// core/soa_pack.cpp).  `lanes` holds kSoaLanes pointers to contiguous
/// genome storage; `dst` is the block base (rows of kSoaLanes elements).
void pack_real_block(const double* const* lanes, std::size_t dim,
                     double* dst) noexcept;
void pack_bits_block(const std::uint8_t* const* lanes, std::size_t dim,
                     std::uint8_t* dst) noexcept;
}  // namespace detail

/// Which genome families can be packed into a slab.  The primary template is
/// the "no" answer (Permutation, IntVector, ...); it must stay well-formed
/// for every G because Problem<G> names SoaView<G> in a virtual signature,
/// and virtuals are instantiated with their class.
template <class G>
struct SoaTraits {
  static constexpr bool kEnabled = false;
  using Elem = unsigned char;
  static std::size_t dim(const G&) noexcept { return 0; }
  static Elem get(const G&, std::size_t) noexcept { return {}; }
};

template <>
struct SoaTraits<RealVector> {
  static constexpr bool kEnabled = true;
  using Elem = double;
  static std::size_t dim(const RealVector& g) noexcept { return g.size(); }
  static Elem get(const RealVector& g, std::size_t i) noexcept {
    return g.values[i];
  }
  static const Elem* ptr(const RealVector& g) noexcept {
    return g.values.data();
  }
};

template <>
struct SoaTraits<BitString> {
  static constexpr bool kEnabled = true;
  using Elem = std::uint8_t;
  static std::size_t dim(const BitString& g) noexcept { return g.size(); }
  static Elem get(const BitString& g, std::size_t i) noexcept {
    return g.bits[i];
  }
  static const Elem* ptr(const BitString& g) noexcept { return g.bits.data(); }
};

/// Read-only window over packed genomes.  `count` is the number of live
/// genomes; the tail lanes of the last block are zero-padded so kernels can
/// always run whole blocks (every benchmark kernel is well-defined at 0 —
/// no packed element is ever a divisor).
template <class G>
struct SoaView {
  using Elem = typename SoaTraits<G>::Elem;

  const Elem* data = nullptr;
  std::size_t count = 0;
  std::size_t dim = 0;

  [[nodiscard]] std::size_t blocks() const noexcept {
    return (count + kSoaLanes - 1) / kSoaLanes;
  }

  /// Pointer to row 0 of block b (rows are dim x kSoaLanes elements).
  [[nodiscard]] const Elem* block(std::size_t b) const noexcept {
    return data + b * dim * kSoaLanes;
  }

  /// Element i of genome g (diagnostic/test accessor; kernels use block()).
  [[nodiscard]] Elem at(std::size_t g, std::size_t i) const noexcept {
    return data[((g / kSoaLanes) * dim + i) * kSoaLanes + (g % kSoaLanes)];
  }

  /// Sub-view over blocks [b0, b1), the tiling unit for parallel dispatch:
  /// pool lanes each take whole blocks, so lane boundaries never split a
  /// SIMD group and results stay independent of the tiling.
  [[nodiscard]] SoaView slice(std::size_t b0, std::size_t b1) const noexcept {
    SoaView v;
    v.data = block(b0);
    v.dim = dim;
    const std::size_t lo = b0 * kSoaLanes;
    const std::size_t hi = std::min(count, b1 * kSoaLanes);
    v.count = hi > lo ? hi - lo : 0;
    return v;
  }
};

using RealSoaView = SoaView<RealVector>;
using BitSoaView = SoaView<BitString>;

/// Owns the packed genome buffer plus a padded fitness scratch.  Reused
/// across generations: once capacities stabilize, gather/scatter allocate
/// nothing (asserted by the counting-allocator test in test_soa.cpp).
template <class G>
class SoaSlab {
 public:
  using Elem = typename SoaTraits<G>::Elem;

  /// Packs `count` genomes (`genome_at(k)` -> const G&) into the slab and
  /// returns a view over them.  Throws std::invalid_argument on ragged
  /// populations — genomes of differing dimension would otherwise read and
  /// write out of bounds.
  template <class GenomeAt>
  SoaView<G> gather(std::size_t count, GenomeAt&& genome_at) {
    const SoaView<G> v = prepare(count, genome_at);
    pack_blocks(0, v.blocks(), genome_at);
    return v;
  }

  /// First half of gather: sizes the slab and validates every genome's
  /// dimension before anything is written — a ragged population must throw
  /// out of a slab it has not touched.  Pairs with pack_blocks so callers
  /// can pack/evaluate/scatter in cache-resident tiles instead of streaming
  /// the whole slab through cache between phases.
  template <class GenomeAt>
  SoaView<G> prepare(std::size_t count, GenomeAt&& genome_at) {
    static_assert(SoaTraits<G>::kEnabled,
                  "SoaSlab::gather requires a packable genome type");
    count_ = count;
    dim_ = count ? SoaTraits<G>::dim(genome_at(std::size_t{0})) : 0;
    const std::size_t blocks = (count + kSoaLanes - 1) / kSoaLanes;
    data_.resize(blocks * dim_ * kSoaLanes);
    fitness_.resize(blocks * kSoaLanes);
    for (std::size_t k = 0; k < count; ++k) {
      const G& g = genome_at(k);
      if (SoaTraits<G>::dim(g) != dim_)
        throw std::invalid_argument(
            "SoaSlab: ragged population (genome " + std::to_string(k) +
            " has dim " + std::to_string(SoaTraits<G>::dim(g)) +
            ", expected " + std::to_string(dim_) + ")");
    }
    return view();
  }

  /// Packs the genomes of blocks [b0, b1) — the tiling unit for both the
  /// cache-blocked sequential path and per-lane packing under the executor
  /// (disjoint block ranges touch disjoint slab bytes, so lanes need no
  /// synchronization).  Requires a prior prepare() with the same genomes.
  /// Full blocks go through the register-blocked transposes in soa_pack.cpp;
  /// written element-wise the strided stores never vectorize and the pack
  /// costs more than the kernels it feeds.  Tail lanes of the last block are
  /// zeroed so kernels always run whole blocks without reading stale data
  /// from a previous, larger gather.
  template <class GenomeAt>
  void pack_blocks(std::size_t b0, std::size_t b1, GenomeAt&& genome_at) {
    const std::size_t full = std::min(b1, count_ / kSoaLanes);
    for (std::size_t b = b0; b < full; ++b) {
      const Elem* lanes[kSoaLanes];
      for (std::size_t l = 0; l < kSoaLanes; ++l)
        lanes[l] = SoaTraits<G>::ptr(genome_at(b * kSoaLanes + l));
      Elem* dst = data_.data() + b * dim_ * kSoaLanes;
      if constexpr (std::is_same_v<Elem, double>)
        detail::pack_real_block(lanes, dim_, dst);
      else
        detail::pack_bits_block(lanes, dim_, dst);
    }
    const std::size_t lo = std::max(b0, full) * kSoaLanes;
    for (std::size_t k = lo; k < std::min(count_, b1 * kSoaLanes); ++k) {
      const G& g = genome_at(k);
      Elem* base = lane_base(k);
      for (std::size_t i = 0; i < dim_; ++i)
        base[i * kSoaLanes] = SoaTraits<G>::get(g, i);
    }
    for (std::size_t k = std::max(count_, lo); k < b1 * kSoaLanes; ++k) {
      Elem* base = lane_base(k);
      for (std::size_t i = 0; i < dim_; ++i) base[i * kSoaLanes] = Elem{};
    }
  }

  /// Sizes the slab for `count` genomes of dimension `dim` WITHOUT gathering
  /// from genome objects — model-based engines (core/model_ga.hpp) sample
  /// candidates straight into the buffer via mutable_data() instead of ever
  /// materializing them.  Tail lanes of the last block are zeroed so a caller
  /// that fills only the live lanes (e.g. a sharded manager assembling shard
  /// messages) still hands kernels well-defined whole blocks; callers that
  /// sample whole blocks simply overwrite them.  Reused across epochs: once
  /// capacity stabilizes this allocates nothing.
  SoaView<G> prepare_raw(std::size_t count, std::size_t dim) {
    static_assert(SoaTraits<G>::kEnabled,
                  "SoaSlab::prepare_raw requires a packable genome type");
    count_ = count;
    dim_ = dim;
    const std::size_t blocks = (count + kSoaLanes - 1) / kSoaLanes;
    data_.resize(blocks * dim * kSoaLanes);
    fitness_.resize(blocks * kSoaLanes);
    for (std::size_t k = count; k < blocks * kSoaLanes; ++k) {
      Elem* base = lane_base(k);
      for (std::size_t i = 0; i < dim; ++i) base[i * kSoaLanes] = Elem{};
    }
    return view();
  }

  /// Mutable block base (layout as in SoaView::block) for external fillers
  /// paired with prepare_raw.  Disjoint block ranges touch disjoint bytes,
  /// so parallel lanes can fill their tiles without synchronization.
  [[nodiscard]] Elem* block_mut(std::size_t b) noexcept {
    return data_.data() + b * dim_ * kSoaLanes;
  }

  [[nodiscard]] SoaView<G> view() const noexcept {
    return SoaView<G>{data_.data(), count_, dim_};
  }

  /// Padded (blocks x kSoaLanes) output scratch aligned with the view:
  /// fitness of genome k lands at index k, tail-lane entries are garbage.
  [[nodiscard]] std::span<double> fitness_scratch() noexcept {
    return {fitness_.data(), fitness_.size()};
  }

 private:
  [[nodiscard]] Elem* lane_base(std::size_t k) noexcept {
    return data_.data() + (k / kSoaLanes) * dim_ * kSoaLanes + (k % kSoaLanes);
  }

  std::vector<Elem> data_;
  std::vector<double> fitness_;
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
};

}  // namespace pga
