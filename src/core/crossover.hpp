#pragma once
// Crossover operators for all four genome families.
//
// A Crossover takes two parents and returns two children.  Factories below
// cover the operators the surveyed systems use: classic k-point and uniform
// crossover for strings/vectors, arithmetic/BLX-alpha/SBX for real coding
// (Oyama 2000), PMX/OX/CX for permutations (TSP, Sena 2001) and a 2-D block
// crossover for matrix-shaped encodings (Kwon & Moon 2003 neuro-genetic
// model).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "core/rng.hpp"

namespace pga {

template <class G>
using Crossover = std::function<std::pair<G, G>(const G&, const G&, Rng&)>;

/// Allocation-free crossover form: transforms two children *in place* (the
/// caller has already copied the parents into reusable child slots).  The
/// *_in_place factories below consume the RNG identically to their
/// pair-returning counterparts, so trajectories are interchangeable.
template <class G>
using CrossoverInPlace = std::function<void(G&, G&, Rng&)>;

namespace crossover {

namespace detail {
/// k-point crossover over any random-access sequence of equal length.
/// Cut points live on the stack for k <= 8 (every factory here uses k <= 2),
/// keeping the hot path allocation-free; the RNG accept/reject order is the
/// same either way.
template <class Seq>
void k_point_exchange(Seq& a, Seq& b, std::size_t k, Rng& rng) {
  const std::size_t n = a.size();
  if (n < 2) return;
  // Draw k distinct cut points in [1, n-1].
  std::size_t small[8];
  std::vector<std::size_t> big;
  const std::size_t want = std::min(k, n - 1);
  std::size_t* cuts = small;
  if (want > 8) {
    big.resize(want);
    cuts = big.data();
  }
  std::size_t count = 0;
  while (count < want) {
    const std::size_t c = 1 + rng.index(n - 1);
    if (std::find(cuts, cuts + count, c) == cuts + count) cuts[count++] = c;
  }
  std::sort(cuts, cuts + count);
  bool swapping = false;
  std::size_t cut_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (cut_idx < count && cuts[cut_idx] == i) {
      swapping = !swapping;
      ++cut_idx;
    }
    if (swapping) std::swap(a[i], b[i]);
  }
}

/// Uniform gene exchange between two children in place.
template <class G>
void uniform_exchange(G& a, G& b, double swap_prob, Rng& rng) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rng.bernoulli(swap_prob)) std::swap(a[i], b[i]);
}

/// Arithmetic blend in place: a and b hold the parent values on entry.
inline void arithmetic_blend(RealVector& a, RealVector& b, Rng& rng) {
  const double w = rng.uniform();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x1 = a[i], x2 = b[i];
    a[i] = w * x1 + (1.0 - w) * x2;
    b[i] = (1.0 - w) * x1 + w * x2;
  }
}

/// BLX-alpha blend in place: a and b hold the parent values on entry.
inline void blx_blend(RealVector& a, RealVector& b, const Bounds& bounds,
                      double alpha, Rng& rng) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double lo = std::min(a[i], b[i]);
    const double hi = std::max(a[i], b[i]);
    const double ext = alpha * (hi - lo);
    a[i] = bounds.clamp(i, rng.uniform(lo - ext, hi + ext));
    b[i] = bounds.clamp(i, rng.uniform(lo - ext, hi + ext));
  }
}

/// SBX in place: a and b hold the parent values on entry.
inline void sbx_blend(RealVector& a, RealVector& b, const Bounds& bounds,
                      double eta, Rng& rng) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!rng.bernoulli(0.5)) continue;  // per-gene application, SBX custom
    const double u = rng.uniform();
    const double beta =
        (u <= 0.5) ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                   : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    const double x1 = a[i], x2 = b[i];
    a[i] = bounds.clamp(i, 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2));
    b[i] = bounds.clamp(i, 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2));
  }
}
}  // namespace detail

// ---------------------------------------------------------------------------
// String / vector crossovers (BitString, IntVector, RealVector)
// ---------------------------------------------------------------------------

/// One-point crossover.
template <class G>
[[nodiscard]] Crossover<G> one_point() {
  return [](const G& p1, const G& p2, Rng& rng) {
    G c1 = p1, c2 = p2;
    detail::k_point_exchange(c1, c2, 1, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

/// Two-point crossover.
template <class G>
[[nodiscard]] Crossover<G> two_point() {
  return [](const G& p1, const G& p2, Rng& rng) {
    G c1 = p1, c2 = p2;
    detail::k_point_exchange(c1, c2, 2, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

/// Uniform crossover: each gene swaps between the children with probability
/// `swap_prob` (0.5 is the classic setting).
template <class G>
[[nodiscard]] Crossover<G> uniform(double swap_prob = 0.5) {
  if (swap_prob < 0.0 || swap_prob > 1.0)
    throw std::invalid_argument("uniform crossover swap_prob in [0,1]");
  return [swap_prob](const G& p1, const G& p2, Rng& rng) {
    G c1 = p1, c2 = p2;
    detail::uniform_exchange(c1, c2, swap_prob, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

// ---------------------------------------------------------------------------
// In-place variants (allocation-free generation loops; see GenWorkspace)
// ---------------------------------------------------------------------------

/// One-point crossover, in place.
template <class G>
[[nodiscard]] CrossoverInPlace<G> one_point_in_place() {
  return [](G& a, G& b, Rng& rng) { detail::k_point_exchange(a, b, 1, rng); };
}

/// Two-point crossover, in place.
template <class G>
[[nodiscard]] CrossoverInPlace<G> two_point_in_place() {
  return [](G& a, G& b, Rng& rng) { detail::k_point_exchange(a, b, 2, rng); };
}

/// Uniform crossover, in place.
template <class G>
[[nodiscard]] CrossoverInPlace<G> uniform_in_place(double swap_prob = 0.5) {
  if (swap_prob < 0.0 || swap_prob > 1.0)
    throw std::invalid_argument("uniform crossover swap_prob in [0,1]");
  return [swap_prob](G& a, G& b, Rng& rng) {
    detail::uniform_exchange(a, b, swap_prob, rng);
  };
}

/// Whole arithmetic crossover, in place.
[[nodiscard]] inline CrossoverInPlace<RealVector> arithmetic_in_place() {
  return [](RealVector& a, RealVector& b, Rng& rng) {
    detail::arithmetic_blend(a, b, rng);
  };
}

/// BLX-alpha crossover, in place.
[[nodiscard]] inline CrossoverInPlace<RealVector> blx_alpha_in_place(
    Bounds bounds, double alpha = 0.5) {
  return [bounds = std::move(bounds), alpha](RealVector& a, RealVector& b,
                                             Rng& rng) {
    detail::blx_blend(a, b, bounds, alpha, rng);
  };
}

/// SBX crossover, in place.
[[nodiscard]] inline CrossoverInPlace<RealVector> sbx_in_place(
    Bounds bounds, double eta = 15.0) {
  return [bounds = std::move(bounds), eta](RealVector& a, RealVector& b,
                                           Rng& rng) {
    detail::sbx_blend(a, b, bounds, eta, rng);
  };
}

/// 2-D block crossover on a BitString interpreted as a rows x cols matrix:
/// swaps a random axis-aligned rectangle (Kwon & Moon 2003 use 2-D encodings
/// for neural-network weight matrices).  `rows * cols` must equal genome size.
[[nodiscard]] inline Crossover<BitString> block_2d(std::size_t rows,
                                                   std::size_t cols) {
  return [rows, cols](const BitString& p1, const BitString& p2, Rng& rng) {
    if (p1.size() != rows * cols)
      throw std::invalid_argument("block_2d: genome size != rows*cols");
    BitString c1 = p1, c2 = p2;
    const std::size_t r0 = rng.index(rows), r1 = rng.index(rows);
    const std::size_t q0 = rng.index(cols), q1 = rng.index(cols);
    const auto [rlo, rhi] = std::minmax(r0, r1);
    const auto [clo, chi] = std::minmax(q0, q1);
    for (std::size_t r = rlo; r <= rhi; ++r)
      for (std::size_t c = clo; c <= chi; ++c)
        std::swap(c1[r * cols + c], c2[r * cols + c]);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

// ---------------------------------------------------------------------------
// Real-coded crossovers
// ---------------------------------------------------------------------------

/// Whole arithmetic crossover: children are convex combinations with a fresh
/// random weight per call.
[[nodiscard]] inline Crossover<RealVector> arithmetic() {
  return [](const RealVector& p1, const RealVector& p2, Rng& rng) {
    RealVector c1 = p1, c2 = p2;
    detail::arithmetic_blend(c1, c2, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

/// BLX-alpha blend crossover: each child gene sampled uniformly from the
/// parents' interval extended by `alpha` on both sides, clamped to bounds.
[[nodiscard]] inline Crossover<RealVector> blx_alpha(Bounds bounds,
                                                     double alpha = 0.5) {
  return [bounds = std::move(bounds), alpha](const RealVector& p1,
                                             const RealVector& p2, Rng& rng) {
    RealVector c1 = p1, c2 = p2;
    detail::blx_blend(c1, c2, bounds, alpha, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

/// Simulated binary crossover (Deb & Agrawal 1995) with distribution index
/// `eta`; larger eta keeps children closer to parents.
[[nodiscard]] inline Crossover<RealVector> sbx(Bounds bounds,
                                               double eta = 15.0) {
  return [bounds = std::move(bounds), eta](const RealVector& p1,
                                           const RealVector& p2, Rng& rng) {
    RealVector c1 = p1, c2 = p2;
    detail::sbx_blend(c1, c2, bounds, eta, rng);
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

// ---------------------------------------------------------------------------
// Permutation crossovers
// ---------------------------------------------------------------------------

/// Partially mapped crossover (PMX).  Preserves a random segment from each
/// parent and repairs the remainder through the induced mapping.
[[nodiscard]] inline Crossover<Permutation> pmx() {
  return [](const Permutation& p1, const Permutation& p2, Rng& rng) {
    const std::size_t n = p1.size();
    if (n < 2) return std::make_pair(p1, p2);
    std::size_t a = rng.index(n), b = rng.index(n);
    if (a > b) std::swap(a, b);

    auto make_child = [&](const Permutation& keep, const Permutation& fill) {
      Permutation child(n);
      std::vector<std::uint32_t> pos(n);  // pos[v] = index of v in `keep`
      for (std::size_t i = 0; i < n; ++i) pos[keep[i]] = static_cast<std::uint32_t>(i);
      std::vector<std::uint8_t> in_segment(n, 0);
      for (std::size_t i = a; i <= b; ++i) {
        child[i] = keep[i];
        in_segment[keep[i]] = 1;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (i >= a && i <= b) continue;
        std::uint32_t v = fill[i];
        while (in_segment[v]) v = fill[pos[v]];  // follow the PMX mapping chain
        child[i] = v;
      }
      return child;
    };

    return std::make_pair(make_child(p1, p2), make_child(p2, p1));
  };
}

/// Order crossover (OX): keeps a segment of one parent and fills the rest in
/// the relative order of the other.
[[nodiscard]] inline Crossover<Permutation> ox() {
  return [](const Permutation& p1, const Permutation& p2, Rng& rng) {
    const std::size_t n = p1.size();
    if (n < 2) return std::make_pair(p1, p2);
    std::size_t a = rng.index(n), b = rng.index(n);
    if (a > b) std::swap(a, b);

    auto make_child = [&](const Permutation& keep, const Permutation& fill) {
      Permutation child(n);
      std::vector<std::uint8_t> used(n, 0);
      for (std::size_t i = a; i <= b; ++i) {
        child[i] = keep[i];
        used[keep[i]] = 1;
      }
      std::size_t write = (b + 1) % n;
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t v = fill[(b + 1 + k) % n];
        if (used[v]) continue;
        child[write] = v;
        used[v] = 1;
        write = (write + 1) % n;
      }
      return child;
    };

    return std::make_pair(make_child(p1, p2), make_child(p2, p1));
  };
}

/// Edge recombination crossover (ERX, Whitley et al.): children are built by
/// walking an adjacency table merged from both parents, always preferring
/// the neighbour with the fewest remaining edges — the operator of choice
/// for TSP because it preserves parental *edges* rather than positions.
/// Produces two children from two independent walks.
[[nodiscard]] inline Crossover<Permutation> erx() {
  return [](const Permutation& p1, const Permutation& p2, Rng& rng) {
    const std::size_t n = p1.size();
    if (n < 2) return std::make_pair(p1, p2);

    // Merged adjacency lists (ring neighbours in either parent, <= 4 each).
    auto build_adjacency = [&] {
      std::vector<std::vector<std::uint32_t>> adj(n);
      auto add_ring = [&](const Permutation& p) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t a = p[i];
          const std::uint32_t b = p[(i + 1) % n];
          auto link = [&](std::uint32_t u, std::uint32_t v) {
            auto& lst = adj[u];
            if (std::find(lst.begin(), lst.end(), v) == lst.end())
              lst.push_back(v);
          };
          link(a, b);
          link(b, a);
        }
      };
      add_ring(p1);
      add_ring(p2);
      return adj;
    };

    auto make_child = [&](std::uint32_t start) {
      auto adj = build_adjacency();
      std::vector<std::uint8_t> used(n, 0);
      Permutation child(n);
      std::uint32_t current = start;
      for (std::size_t pos = 0; pos < n; ++pos) {
        child[pos] = current;
        used[current] = 1;
        // Remove `current` from every adjacency list it appears in.
        for (std::uint32_t nb : adj[current]) {
          auto& lst = adj[nb];
          lst.erase(std::remove(lst.begin(), lst.end(), current), lst.end());
        }
        if (pos + 1 == n) break;
        // Next: the unused neighbour with the shortest remaining list
        // (ties broken uniformly); if none, a random unused vertex.
        std::uint32_t next = 0;
        std::size_t best_len = SIZE_MAX;
        std::size_t ties = 0;
        for (std::uint32_t nb : adj[current]) {
          if (used[nb]) continue;
          const std::size_t len = adj[nb].size();
          if (len < best_len) {
            best_len = len;
            next = nb;
            ties = 1;
          } else if (len == best_len) {
            ++ties;
            if (rng.index(ties) == 0) next = nb;
          }
        }
        if (best_len == SIZE_MAX) {
          // Dead end: restart from a uniformly random unused vertex.
          std::size_t remaining = 0;
          for (std::size_t v = 0; v < n; ++v) remaining += !used[v];
          std::size_t pick = rng.index(remaining);
          for (std::uint32_t v = 0; v < n; ++v) {
            if (used[v]) continue;
            if (pick-- == 0) {
              next = v;
              break;
            }
          }
        }
        current = next;
      }
      return child;
    };

    return std::make_pair(make_child(p1[0]), make_child(p2[0]));
  };
}

/// Cycle crossover (CX): children inherit each city's position from exactly
/// one parent, alternating by cycle.
[[nodiscard]] inline Crossover<Permutation> cx() {
  return [](const Permutation& p1, const Permutation& p2, Rng&) {
    const std::size_t n = p1.size();
    Permutation c1(n), c2(n);
    std::vector<std::uint32_t> pos1(n);
    for (std::size_t i = 0; i < n; ++i) pos1[p1[i]] = static_cast<std::uint32_t>(i);
    std::vector<std::uint8_t> assigned(n, 0);
    bool from_first = true;
    for (std::size_t start = 0; start < n; ++start) {
      if (assigned[start]) continue;
      // Walk the cycle containing `start`.
      std::size_t i = start;
      do {
        assigned[i] = 1;
        c1[i] = from_first ? p1[i] : p2[i];
        c2[i] = from_first ? p2[i] : p1[i];
        i = pos1[p2[i]];
      } while (i != start);
      from_first = !from_first;
    }
    return std::make_pair(std::move(c1), std::move(c2));
  };
}

}  // namespace crossover
}  // namespace pga
