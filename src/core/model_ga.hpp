#pragma once
// Model-based engines: the compact GA (cGA) and UMDA as first-class,
// throughput-oriented engines over BitString.
//
// Instead of storing individuals, these engines store a probability vector
// p[dim] — Harik's compact GA simulates a virtual population of N
// individuals in O(dim) memory by nudging each locus by 1/N toward
// tournament winners, which is how "effective population 10^6..10^9" fits
// in kilobytes (the ROADMAP's millions-of-virtual-individuals item; Lobo,
// Lima & Mártires, arXiv cs/0402049, give the parallel architecture).  UMDA
// replaces the nudge with the one-frequency of the top-mu candidates.
//
// Throughput design:
//   * Sampling is counter-based (CounterRng): the draw for (candidate c,
//     locus i) always uses counter c*dim+i under a per-epoch key, so the
//     bits are a pure function of (seed, epoch, candidate, locus) — the
//     same regardless of thread count, SIMD width, or shard decomposition.
//     The hot loops live in core/model_sample.cpp (-O3, ISA clones).
//   * Candidates are sampled straight into a SoaSlab (prepare_raw — no
//     genome objects, no gather) and evaluated with the PR-5 SoA kernels;
//     the per-lane tile fuses sample -> evaluate so one block stays
//     cache-resident across both phases.  Zero steady-state allocations
//     (asserted in tests/test_model.cpp).
//   * Updates accumulate integer tournament deltas / one-counts per locus
//     range in full block order: exact, commutative, thread-invariant.
//
// The sharded distributed mode (run_sharded_model) follows the
// manager/worker architecture of cs/0402049: each worker rank owns a slice
// of the probability vector, samples its slice for the whole batch, and
// ships the packed bits to a manager that assembles the slab, evaluates,
// and returns updated model slices.  Because sampling is counter-based, the
// manager's shadow model can regenerate any shard's exact contribution —
// stragglers and failures (the SimCluster injection hooks) cost traffic,
// never trajectory: a sharded run is bit-identical to the single-process
// engine at equal seeds, whatever dies.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/genome.hpp"
#include "core/model_kernels.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/soa.hpp"
#include "core/termination.hpp"
#include "exec/parallelism.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"

namespace pga {

enum class ModelKind : std::uint8_t { kCga, kUmda };

[[nodiscard]] constexpr const char* to_string(ModelKind k) noexcept {
  switch (k) {
    case ModelKind::kCga: return "cGA";
    case ModelKind::kUmda: return "UMDA";
  }
  return "?";
}

struct ModelGaConfig {
  ModelKind kind = ModelKind::kCga;
  /// cGA virtual population N: each tournament nudges a differing locus by
  /// 1/N.  This is the "effective population" axis — it costs no memory.
  /// Ignored by UMDA (whose population per epoch is `batch`).
  double virtual_population = 1e6;
  /// Candidates sampled and evaluated per epoch (rounded up to even for
  /// cGA pairing).  The batch is the real memory/throughput knob: slab
  /// bytes are batch x dim, and in sharded mode one model exchange is
  /// amortized over `batch` evaluations.
  std::size_t batch = 256;
  /// UMDA selection size mu (0 = batch / 2).
  std::size_t selection = 0;
  /// Probability clamp [margin, 1-margin] so no locus fixates irrecoverably
  /// (< 0 = the standard 1/dim).
  double margin = -1.0;
  std::uint64_t seed = 1;
  StopCondition stop{};
  int rank = 0;
  obs::Tracer trace{};
};

/// Complete resumable model state: restoring it and re-running reproduces
/// the original trajectory bit-for-bit (sampling is a pure function of
/// (seed, epoch)).  Serialized via core/checkpoint.hpp.
struct ModelState {
  std::vector<double> p;
  std::uint64_t epoch = 0;
  std::uint64_t evaluations = 0;
  double best_fitness = -std::numeric_limits<double>::infinity();
  BitString best_genome{};
};

struct ModelResult {
  Individual<BitString> best{};
  std::uint64_t epochs = 0;
  std::uint64_t evaluations = 0;
  bool reached_target = false;
};

class ModelGa {
 public:
  ModelGa(std::size_t dim, ModelGaConfig cfg) : cfg_(std::move(cfg)), dim_(dim) {
    if (dim == 0) throw std::invalid_argument("ModelGa: dim must be > 0");
    if (cfg_.batch < 2) cfg_.batch = 2;
    if (cfg_.kind == ModelKind::kCga && cfg_.batch % 2 != 0) ++cfg_.batch;
    if (cfg_.selection == 0 || cfg_.selection > cfg_.batch)
      cfg_.selection = cfg_.batch / 2;
    if (!(cfg_.virtual_population >= 1.0))
      throw std::invalid_argument("ModelGa: virtual_population must be >= 1");
    margin_ = cfg_.margin >= 0.0 ? cfg_.margin : 1.0 / static_cast<double>(dim);
    key_ = CounterRng::keyed(cfg_.seed);
    state_.p.assign(dim, 0.5);
    blocks_ = (cfg_.batch + kSoaLanes - 1) / kSoaLanes;
    winner_hi_.assign(blocks_ * (kSoaLanes / 2), 0);
    live_.assign(blocks_ * (kSoaLanes / 2), 0);
    delta_.assign(dim, 0);
    ones_.assign(dim, 0);
    sel_.resize(cfg_.batch);
    fit_copy_.reserve(cfg_.batch);
  }

  [[nodiscard]] const ModelState& state() const noexcept { return state_; }
  [[nodiscard]] const ModelGaConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Batch after rounding (what a sharded worker must agree on).
  [[nodiscard]] std::size_t batch() const noexcept { return cfg_.batch; }
  [[nodiscard]] double margin() const noexcept { return margin_; }

  /// Restores a checkpointed model state; the next epoch continues the
  /// original trajectory exactly.
  void restore(ModelState s) {
    if (s.p.size() != dim_)
      throw std::invalid_argument("ModelGa::restore: dimension mismatch");
    state_ = std::move(s);
  }

  /// Sampling key for the current epoch — candidate c, locus i draw uses
  /// counter c*dim+i under this key, wherever it is computed.
  [[nodiscard]] std::uint64_t epoch_key() const noexcept {
    return key_.derive(state_.epoch).key();
  }

  /// One epoch: sample `batch()` candidates from the model straight into
  /// the slab (fused with SoA evaluation per lane tile when the problem has
  /// a kernel), tournament/select, update the model, emit telemetry.
  /// Returns evaluations performed (== batch()).  `t` stamps the emitted
  /// events; < 0 uses the epoch index (the virtual-time convention of
  /// in-process runs).
  std::size_t step(const Problem<BitString>& problem,
                   const exec::Parallelism& par = {}, double t = -1.0) {
    prepare_slab();
    const std::uint64_t ekey = epoch_key();
    const double* p = state_.p.data();
    auto out = slab_.fitness_scratch();
    if (problem.has_soa_kernel()) {
      par.for_range(0, blocks_, 0,
                    [&](std::size_t b0, std::size_t b1, int) {
                      for (std::size_t b = b0; b < b1; ++b)
                        model_detail::sample_rows(p, 0, dim_, dim_, ekey,
                                                  b * kSoaLanes,
                                                  slab_.block_mut(b));
                      problem.fitness_soa(
                          slab_.view().slice(b0, b1),
                          out.subspan(b0 * kSoaLanes, (b1 - b0) * kSoaLanes));
                    });
    } else {
      par.for_range(0, blocks_, 0,
                    [&](std::size_t b0, std::size_t b1, int) {
                      for (std::size_t b = b0; b < b1; ++b)
                        model_detail::sample_rows(p, 0, dim_, dim_, ekey,
                                                  b * kSoaLanes,
                                                  slab_.block_mut(b));
                    });
      evaluate_batch_path(problem, par);
    }
    update(par, t);
    return cfg_.batch;
  }

  /// Sharded-manager path: the slab for the current epoch was filled
  /// externally (assembled from shard messages and/or regenerated);
  /// evaluate and update only.  Bit-identical to step() because the
  /// externally filled bits are, by counter-RNG construction, the same bits
  /// step() would have sampled.
  std::size_t step_prefilled(const Problem<BitString>& problem,
                             const exec::Parallelism& par = {},
                             double t = -1.0) {
    auto out = slab_.fitness_scratch();
    if (problem.has_soa_kernel()) {
      par.for_range(0, blocks_, 0,
                    [&](std::size_t b0, std::size_t b1, int) {
                      problem.fitness_soa(
                          slab_.view().slice(b0, b1),
                          out.subspan(b0 * kSoaLanes, (b1 - b0) * kSoaLanes));
                    });
    } else {
      evaluate_batch_path(problem, par);
    }
    update(par, t);
    return cfg_.batch;
  }

  /// Sizes the slab for the current epoch and returns its mutable base for
  /// external filling (tail lanes pre-zeroed).  Layout as in SoaView.
  std::uint8_t* prepare_slab() {
    slab_.prepare_raw(cfg_.batch, dim_);
    return slab_.block_mut(0);
  }
  [[nodiscard]] std::size_t slab_blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::uint8_t* slab_block(std::size_t b) noexcept {
    return slab_.block_mut(b);
  }

  /// Drives epochs until the stop condition fires.
  ModelResult run(const Problem<BitString>& problem,
                  const exec::Parallelism& par = {}) {
    std::uint64_t stagnant = 0;
    double last_best = state_.best_fitness;
    while (!stop_now(cfg_.stop, state_, stagnant)) {
      step(problem, par);
      note_progress(state_, last_best, stagnant);
    }
    ModelResult r;
    r.best = Individual<BitString>(state_.best_genome, state_.best_fitness);
    r.epochs = state_.epoch;
    r.evaluations = state_.evaluations;
    r.reached_target = cfg_.stop.target_reached(state_.best_fitness);
    return r;
  }

  /// Resident bytes of the engine's working set: model + slab + update
  /// scratch.  Independent of virtual_population — the bench's
  /// memory-bounded-O(dim) gate reads this.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t n = state_.p.capacity() * sizeof(double);
    n += blocks_ * dim_ * kSoaLanes;                  // slab bits
    n += blocks_ * kSoaLanes * sizeof(double);        // fitness scratch
    n += winner_hi_.capacity() + live_.capacity();
    n += delta_.capacity() * sizeof(std::int32_t);
    n += ones_.capacity() * sizeof(std::uint32_t);
    n += sel_.capacity() * sizeof(std::uint32_t);
    n += fit_copy_.capacity() * sizeof(double);
    for (const auto& g : scratch_)
      n += g.bits.capacity() + sizeof(BitString);
    return n;
  }

  // Shared stop logic, public so the sharded manager reproduces in-process
  // termination exactly (the bit-identity contract includes *when* to stop).
  [[nodiscard]] static bool stop_now(const StopCondition& s,
                                     const ModelState& st,
                                     std::uint64_t stagnant) noexcept {
    return st.epoch >= s.max_generations ||
           st.evaluations >= s.max_evaluations ||
           s.target_reached(st.best_fitness) ||
           (s.stagnation_generations != 0 &&
            stagnant >= s.stagnation_generations);
  }
  static void note_progress(const ModelState& st, double& last_best,
                            std::uint64_t& stagnant) noexcept {
    if (st.best_fitness > last_best) {
      last_best = st.best_fitness;
      stagnant = 0;
    } else {
      ++stagnant;
    }
  }

 private:
  // Non-kernel problems (e.g. NKLandscape, which overrides gene-major
  // fitness_batch): unpack slab lanes into reused scratch genomes and
  // evaluate per chunk.  Disjoint candidate ranges write disjoint outputs,
  // so results are chunking-invariant.
  void evaluate_batch_path(const Problem<BitString>& problem,
                           const exec::Parallelism& par) {
    if (scratch_.size() != cfg_.batch) {
      scratch_.resize(cfg_.batch);
      for (auto& g : scratch_) g.bits.assign(dim_, 0);
    }
    auto out = slab_.fitness_scratch();
    const auto v = slab_.view();
    par.for_range(0, cfg_.batch, 0,
                  [&](std::size_t c0, std::size_t c1, int) {
                    for (std::size_t c = c0; c < c1; ++c) {
                      auto& bits = scratch_[c].bits;
                      for (std::size_t i = 0; i < dim_; ++i)
                        bits[i] = v.at(c, i);
                    }
                    problem.fitness_batch(
                        std::span<const BitString>(scratch_).subspan(c0,
                                                                     c1 - c0),
                        out.subspan(c0, c1 - c0));
                  });
  }

  // Tournament/selection update.  Parallelized over locus ranges: each lane
  // accumulates integer deltas / one-counts for its loci over all blocks in
  // fixed order, so the result is exact and identical for any thread count.
  void update(const exec::Parallelism& par, double t) {
    auto fit = slab_.fitness_scratch();
    const std::size_t B = cfg_.batch;

    // Best of the epoch, first-index tie-break.
    std::size_t arg_best = 0;
    double epoch_best = fit[0];
    double mean = 0.0, worst = fit[0];
    for (std::size_t c = 0; c < B; ++c) {
      const double f = fit[c];
      mean += f;
      if (f > epoch_best) {
        epoch_best = f;
        arg_best = c;
      }
      if (f < worst) worst = f;
    }
    mean /= static_cast<double>(B);

    const double lo = margin_, hi = 1.0 - margin_;
    if (cfg_.kind == ModelKind::kCga) {
      // Pair lanes (2j, 2j+1); ties make no update (no drift on plateaus).
      const std::size_t pairs = B / 2;
      for (std::size_t j = 0; j < pairs; ++j) {
        const double a = fit[2 * j], b = fit[2 * j + 1];
        live_[j] = a != b ? 1 : 0;
        winner_hi_[j] = b > a ? 1 : 0;
      }
      const double inv_n = 1.0 / cfg_.virtual_population;
      const std::uint8_t* slab = slab_.view().data;
      par.for_range(0, dim_, 0,
                            [&](std::size_t i0, std::size_t i1, int) {
                              std::fill(delta_.begin() + static_cast<std::ptrdiff_t>(i0),
                                        delta_.begin() + static_cast<std::ptrdiff_t>(i1), 0);
                              model_detail::cga_accumulate(
                                  slab, dim_, blocks_, winner_hi_.data(),
                                  live_.data(), i0, i1, delta_.data());
                              for (std::size_t i = i0; i < i1; ++i)
                                state_.p[i] = std::clamp(
                                    state_.p[i] + delta_[i] * inv_n, lo, hi);
                            });
    } else {
      // UMDA: top-mu by (fitness desc, index asc), per-locus one-frequency.
      const std::size_t mu = cfg_.selection;
      for (std::size_t c = 0; c < B; ++c)
        sel_[c] = static_cast<std::uint32_t>(c);
      std::partial_sort(sel_.begin(),
                        sel_.begin() + static_cast<std::ptrdiff_t>(mu),
                        sel_.end(), [&](std::uint32_t a, std::uint32_t b) {
                          if (fit[a] != fit[b]) return fit[a] > fit[b];
                          return a < b;
                        });
      const double inv_mu = 1.0 / static_cast<double>(mu);
      const std::uint8_t* slab = slab_.view().data;
      par.for_range(0, dim_, 0,
                            [&](std::size_t i0, std::size_t i1, int) {
                              std::fill(ones_.begin() + static_cast<std::ptrdiff_t>(i0),
                                        ones_.begin() + static_cast<std::ptrdiff_t>(i1), 0);
                              model_detail::umda_count(slab, dim_, sel_.data(),
                                                       mu, i0, i1,
                                                       ones_.data());
                              for (std::size_t i = i0; i < i1; ++i)
                                state_.p[i] = std::clamp(
                                    ones_[i] * inv_mu, lo, hi);
                            });
    }

    if (epoch_best > state_.best_fitness) {
      state_.best_fitness = epoch_best;
      const auto v = slab_.view();
      state_.best_genome.bits.resize(dim_);
      for (std::size_t i = 0; i < dim_; ++i)
        state_.best_genome.bits[i] = v.at(arg_best, i);
    }

    const std::uint64_t gen = state_.epoch;
    state_.evaluations += B;
    ++state_.epoch;

    if (cfg_.trace) {
      const double tt = t >= 0.0 ? t : static_cast<double>(gen);
      cfg_.trace.gen_stats(cfg_.rank, tt, gen, B, state_.best_fitness, mean,
                           worst);
      // Model-space analogues of the probe stats: genotypic diversity is
      // the expected pairwise Hamming fraction 2p(1-p); takeover is the
      // probability mass of the modal genotype (prod of max(p, 1-p) — with
      // margins it converges to (1-margin)^dim, not 1.0).
      double div = 0.0, takeover = 1.0;
      for (std::size_t i = 0; i < dim_; ++i) {
        const double pi = state_.p[i];
        div += 2.0 * pi * (1.0 - pi);
        takeover *= std::max(pi, 1.0 - pi);
      }
      div /= static_cast<double>(dim_);
      double var = 0.0;
      fit_copy_.assign(fit.begin(), fit.begin() + static_cast<std::ptrdiff_t>(B));
      for (double f : fit_copy_) var += (f - mean) * (f - mean);
      const double spread = std::sqrt(var / static_cast<double>(B));
      const double entropy = obs::probe_detail::fitness_entropy(fit_copy_, 16);
      double intensity = 0.0;
      if (has_prev_ && prev_sd_ > 1e-12)
        intensity = (mean - prev_mean_) / prev_sd_;
      prev_mean_ = mean;
      prev_sd_ = spread;
      has_prev_ = true;
      cfg_.trace.search_stats(cfg_.rank, tt, gen, B, div, spread, entropy,
                              intensity, takeover, state_.best_fitness,
                              state_.evaluations);
    }
  }

  ModelGaConfig cfg_;
  std::size_t dim_;
  double margin_ = 0.0;
  CounterRng key_{0};
  ModelState state_{};
  SoaSlab<BitString> slab_;
  std::size_t blocks_ = 0;
  std::vector<std::uint8_t> winner_hi_, live_;
  std::vector<std::int32_t> delta_;
  std::vector<std::uint32_t> ones_;
  std::vector<std::uint32_t> sel_;
  std::vector<double> fit_copy_;
  std::vector<BitString> scratch_;
  double prev_mean_ = 0.0, prev_sd_ = 0.0;
  bool has_prev_ = false;
};

// ---------------------------------------------------------------------------
// Sharded distributed mode (manager/worker over any comm::Transport)
// ---------------------------------------------------------------------------

inline constexpr int kTagModelCtl = 9301;   ///< startup broadcast
inline constexpr int kTagModelDown = 9302;  ///< manager -> shard: model slice
inline constexpr int kTagModelUp = 9303;    ///< shard -> manager: packed bits

/// Locus slice owned by 0-based shard s of `shards`.
struct ShardSlice {
  std::size_t lo = 0, hi = 0;
  [[nodiscard]] std::size_t len() const noexcept { return hi - lo; }
};
[[nodiscard]] inline ShardSlice shard_slice(std::size_t dim, int shards,
                                            int s) noexcept {
  const auto n = static_cast<std::size_t>(shards);
  const auto k = static_cast<std::size_t>(s);
  return {dim * k / n, dim * (k + 1) / n};
}

struct ShardedModelConfig {
  ModelGaConfig engine{};
  /// Straggler deadline (virtual seconds on SimCluster) for one epoch's
  /// sample collection.  Infinite = block forever: simplest when no
  /// failures are injected, but fault tolerance requires a finite value.
  double epoch_timeout_s = std::numeric_limits<double>::infinity();
  /// Consecutive missed deadlines before a shard is declared dead (the
  /// manager stops waiting for it; its slice is regenerated every epoch).
  int dead_after_misses = 3;
  /// Manager snapshots its shadow model every k epochs (0 = never).
  std::size_t checkpoint_every = 0;
  std::function<void(const ModelState&)> on_checkpoint{};
  /// Resume from a checkpointed model state (manager side).
  const ModelState* resume = nullptr;
  // Virtual compute-cost model (SimCluster timing realism; all default 0).
  double sample_cost_per_bit_s = 0.0;      ///< worker, per candidate-locus
  double eval_cost_per_candidate_s = 0.0;  ///< manager, per candidate
  double update_cost_per_locus_s = 0.0;    ///< manager, per locus
};

struct ShardedModelReport {
  ModelResult result{};
  ModelState final_state{};  ///< manager's shadow model at exit
  int shards = 0;
  std::vector<int> dead_shards{};
  std::uint64_t sample_bytes = 0, sample_messages = 0;  ///< up traffic
  std::uint64_t model_bytes = 0, model_messages = 0;    ///< down traffic
  /// Slices the manager regenerated from the shadow model (stragglers,
  /// failures).  Regeneration is bit-exact, so this is a traffic/latency
  /// statistic, never a trajectory perturbation.
  std::uint64_t regenerated_slices = 0;
};

/// Runs the sharded model GA on every rank of `t`: rank 0 is the manager
/// (shadow model, evaluation, updates), ranks 1..world-1 each own the locus
/// slice shard_slice(dim, world-1, rank-1).  Every rank calls this; the
/// manager's return value carries the results (worker returns only set
/// `shards`).  The trajectory — and final_state — is bit-identical to
/// ModelGa::run with the same config on one process, for any shard count
/// and any injected failure.
inline ShardedModelReport run_sharded_model(comm::Transport& t,
                                            std::size_t dim,
                                            const Problem<BitString>& problem,
                                            const ShardedModelConfig& cfg) {
  const int world = t.world_size();
  const int shards = world - 1;
  if (shards < 1)
    throw std::invalid_argument("run_sharded_model: need >= 2 ranks");
  ShardedModelReport rep;
  rep.shards = shards;
  const bool finite_deadline =
      cfg.epoch_timeout_s < std::numeric_limits<double>::infinity();

  if (t.rank() == 0) {
    ModelGaConfig ecfg = cfg.engine;
    ecfg.rank = 0;
    ModelGa engine(dim, ecfg);
    if (cfg.resume) engine.restore(*cfg.resume);
    const std::size_t B = engine.batch();

    {  // Startup handshake: geometry every worker must agree on.
      comm::ByteWriter w;
      w.write<std::uint64_t>(dim);
      w.write<std::uint64_t>(B);
      w.write<std::uint64_t>(ecfg.seed);
      w.write<double>(cfg.sample_cost_per_bit_s);
      (void)comm::broadcast(t, 0, kTagModelCtl, std::move(w).take());
    }

    std::vector<char> alive(static_cast<std::size_t>(shards) + 1, 1);
    std::vector<int> misses(static_cast<std::size_t>(shards) + 1, 0);
    std::vector<char> got(static_cast<std::size_t>(shards) + 1, 0);
    std::uint64_t stagnant = 0;
    double last_best = engine.state().best_fitness;

    auto send_model = [&](std::uint64_t epoch, bool stop_flag) {
      for (int s = 1; s <= shards; ++s) {
        const ShardSlice sl = shard_slice(dim, shards, s - 1);
        comm::ByteWriter w;
        w.write<std::uint64_t>(epoch);
        w.write<std::uint8_t>(stop_flag ? 1 : 0);
        std::vector<double> slice(engine.state().p.begin() + static_cast<std::ptrdiff_t>(sl.lo),
                                  engine.state().p.begin() + static_cast<std::ptrdiff_t>(sl.hi));
        w.write_vector(slice);
        auto payload = std::move(w).take();
        rep.model_bytes += payload.size();
        ++rep.model_messages;
        t.send(s, kTagModelDown, std::move(payload));
      }
    };

    for (;;) {
      const bool stop =
          ModelGa::stop_now(ecfg.stop, engine.state(), stagnant);
      send_model(engine.state().epoch, stop);
      if (stop) break;

      std::uint8_t* slab = engine.prepare_slab();
      std::fill(got.begin(), got.end(), 0);
      int want = 0;
      for (int s = 1; s <= shards; ++s) want += alive[static_cast<std::size_t>(s)] ? 1 : 0;
      const double deadline = t.now() + cfg.epoch_timeout_s;
      int have = 0;
      while (have < want) {
        std::optional<comm::Message> m;
        if (finite_deadline) {
          const double remaining = deadline - t.now();
          if (remaining <= 0.0) break;
          m = t.recv_timeout(remaining, comm::Transport::kAnySource,
                             kTagModelUp);
        } else {
          m = t.recv(comm::Transport::kAnySource, kTagModelUp);
        }
        if (!m) break;  // deadline or shutdown
        comm::ByteReader r(m->payload);
        const auto msg_epoch = r.read<std::uint64_t>();
        const int src = m->source;
        if (msg_epoch != engine.state().epoch ||
            !alive[static_cast<std::size_t>(src)] ||
            got[static_cast<std::size_t>(src)])
          continue;  // stale straggler sample / dead shard: already covered
        const auto packed = r.read_vector<std::uint8_t>();
        const ShardSlice sl = shard_slice(dim, shards, src - 1);
        model_detail::unpack_to_slab(packed.data(), 0, B, sl.lo, sl.hi, dim,
                                     slab);
        got[static_cast<std::size_t>(src)] = 1;
        ++have;
        rep.sample_bytes += m->payload.size();
        ++rep.sample_messages;
      }

      // Missing shards (straggler or dead): regenerate their exact bits
      // from the shadow model — same key, same counters, same samples.
      for (int s = 1; s <= shards; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (got[si]) {
          misses[si] = 0;
          continue;
        }
        if (alive[si]) {
          if (cfg.engine.trace)
            cfg.engine.trace.mark(0, t.now(), "shard_sample_missed", s);
          if (++misses[si] >= cfg.dead_after_misses) {
            alive[si] = 0;
            rep.dead_shards.push_back(s);
            if (cfg.engine.trace)
              cfg.engine.trace.mark(0, t.now(), "shard_declared_dead", s);
          }
        }
        const ShardSlice sl = shard_slice(dim, shards, s - 1);
        const std::uint64_t ekey = engine.epoch_key();
        for (std::size_t b = 0; b < engine.slab_blocks(); ++b)
          model_detail::sample_rows(engine.state().p.data(), sl.lo, sl.hi,
                                    dim, ekey, b * kSoaLanes,
                                    engine.slab_block(b));
        ++rep.regenerated_slices;
      }

      if (cfg.eval_cost_per_candidate_s > 0.0 ||
          cfg.update_cost_per_locus_s > 0.0)
        t.compute(static_cast<double>(B) * cfg.eval_cost_per_candidate_s +
                  static_cast<double>(dim) * cfg.update_cost_per_locus_s);
      engine.step_prefilled(problem, {}, t.now());
      ModelGa::note_progress(engine.state(), last_best, stagnant);

      if (cfg.checkpoint_every != 0 && cfg.on_checkpoint &&
          engine.state().epoch % cfg.checkpoint_every == 0)
        cfg.on_checkpoint(engine.state());
    }

    rep.final_state = engine.state();
    rep.result.best = Individual<BitString>(rep.final_state.best_genome,
                                            rep.final_state.best_fitness);
    rep.result.epochs = rep.final_state.epoch;
    rep.result.evaluations = rep.final_state.evaluations;
    rep.result.reached_target =
        ecfg.stop.target_reached(rep.final_state.best_fitness);
    return rep;
  }

  // ---- Worker: owns one slice of the model, samples it for every batch.
  auto hello = comm::broadcast(t, 0, kTagModelCtl, {});
  comm::ByteReader hr(hello);
  const auto wdim = static_cast<std::size_t>(hr.read<std::uint64_t>());
  const auto B = static_cast<std::size_t>(hr.read<std::uint64_t>());
  const auto seed = hr.read<std::uint64_t>();
  const double sample_cost = hr.read<double>();
  if (wdim != dim)
    throw std::invalid_argument("run_sharded_model: dim mismatch at worker");
  const ShardSlice sl = shard_slice(dim, shards, t.rank() - 1);
  const CounterRng base = CounterRng::keyed(seed);
  std::vector<double> pslice(sl.len(), 0.5);
  std::vector<std::uint8_t> packed((B * sl.len() + 7) / 8);

  for (;;) {
    auto m = t.recv(0, kTagModelDown);
    if (!m) return rep;  // transport shut down
    // Drain to the latest queued model: a straggler that fell behind skips
    // epochs the manager already regenerated.
    while (auto fresher = t.try_recv(0, kTagModelDown)) m = std::move(fresher);
    comm::ByteReader r(m->payload);
    const auto epoch = r.read<std::uint64_t>();
    const bool stop = r.read<std::uint8_t>() != 0;
    pslice = r.read_vector<double>();
    if (stop) return rep;
    if (sample_cost > 0.0)
      t.compute(static_cast<double>(B * sl.len()) * sample_cost);
    model_detail::sample_pack(pslice.data(), dim, base.derive(epoch).key(), 0,
                              B, sl.lo, sl.hi, packed.data());
    comm::ByteWriter w;
    w.write<std::uint64_t>(epoch);
    w.write_vector(packed);
    t.send(0, kTagModelUp, std::move(w).take());
  }
}

}  // namespace pga
