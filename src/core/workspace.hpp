#pragma once
// Per-engine generation workspace.
//
// Scratch buffers a reproductive loop needs every generation — the fitness
// snapshot for selection, offspring slots, the next-generation vector — are
// kept here and reused, so the steady-state cost of a generation is zero
// heap allocations after warmup (asserted by tests/test_soa.cpp with a
// counting allocator).  Genome slots keep their capacity across generations:
// copies into them are capacity-reusing assignments, and finished offspring
// are std::swap'ed (never moved) into the next generation so allocations
// circulate instead of being freed and re-made.

#include <vector>

#include "core/population.hpp"

namespace pga {

/// Reusable scratch for one evolution engine (one per scheme / deme / master
/// loop; not shared across threads).
template <class G>
struct GenWorkspace {
  std::vector<double> fitness;              ///< selection fitness snapshot
  std::vector<Individual<G>> offspring;     ///< offspring slots (slot capacity persists)
  std::vector<Individual<G>> next;          ///< next-generation staging vector
  Individual<G> spare;                      ///< sink for a dropped second child
};

}  // namespace pga
