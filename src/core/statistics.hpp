#pragma once
// Run statistics: per-generation snapshots, running moments, and the
// success/effort accounting used by every experiment (success rate, mean
// evaluations-to-solution, numerical speedup).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace pga {

/// Welford running mean/variance; used for aggregating repeated GA runs and
/// for on-line population statistics.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One generation's population snapshot.
struct GenStats {
  std::size_t generation = 0;
  std::size_t evaluations = 0;  ///< cumulative evaluations at snapshot time
  double best = 0.0;
  double mean = 0.0;
  double worst = 0.0;
};

/// Aggregates many independent runs of the same configuration into the
/// efficacy / effort numbers Alba & Troya report: hit rate, mean and median
/// evaluations among successful runs.
class EffortAccumulator {
 public:
  /// Records one run: whether it hit the target, and at how many evaluations.
  void add_run(bool success, std::size_t evals_to_target) {
    ++runs_;
    if (success) {
      ++hits_;
      successful_evals_.push_back(static_cast<double>(evals_to_target));
    }
  }

  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

  /// Efficacy: fraction of runs that found the target ("number of hits").
  [[nodiscard]] double hit_rate() const noexcept {
    return runs_ ? static_cast<double>(hits_) / static_cast<double>(runs_) : 0.0;
  }

  /// Mean evaluations-to-solution over *successful* runs (the "numerical
  /// effort" measure; infinity when no run succeeded).
  [[nodiscard]] double mean_evals() const noexcept {
    if (successful_evals_.empty())
      return std::numeric_limits<double>::infinity();
    double s = 0.0;
    for (double v : successful_evals_) s += v;
    return s / static_cast<double>(successful_evals_.size());
  }

  [[nodiscard]] double median_evals() const {
    if (successful_evals_.empty())
      return std::numeric_limits<double>::infinity();
    std::vector<double> v = successful_evals_;
    std::sort(v.begin(), v.end());
    const std::size_t m = v.size() / 2;
    return (v.size() % 2) ? v[m] : 0.5 * (v[m - 1] + v[m]);
  }

 private:
  std::size_t runs_ = 0;
  std::size_t hits_ = 0;
  std::vector<double> successful_evals_;
};

}  // namespace pga
