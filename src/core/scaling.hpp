#pragma once
// Fitness scaling: transforms applied to raw fitness before
// fitness-proportionate selection.  Classic GA practice (Goldberg ch. 3) to
// keep selection pressure useful early (when one super-individual would take
// over) and late (when fitnesses have converged and roulette degenerates to
// uniform).  Scalings compose with any Selector via `scaled`.

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/selection.hpp"

namespace pga {

/// Maps a fitness vector to a scaled one (same length).
using FitnessScaling =
    std::function<std::vector<double>(std::span<const double>)>;

namespace scaling {

/// Linear scaling f' = a f + b with the classic calibration: mean maps to
/// mean, max maps to `pressure` * mean (default 2.0), truncated at zero.
[[nodiscard]] inline FitnessScaling linear(double pressure = 2.0) {
  if (pressure <= 1.0)
    throw std::invalid_argument("linear scaling pressure must be > 1");
  return [pressure](std::span<const double> fitness) {
    const double n = static_cast<double>(fitness.size());
    const double mean = std::accumulate(fitness.begin(), fitness.end(), 0.0) / n;
    const double max = *std::max_element(fitness.begin(), fitness.end());
    std::vector<double> out(fitness.size());
    if (max <= mean + 1e-300) {
      std::fill(out.begin(), out.end(), 1.0);  // converged: uniform
      return out;
    }
    const double a = (pressure - 1.0) * mean / (max - mean);
    const double b = mean * (1.0 - a);
    for (std::size_t i = 0; i < fitness.size(); ++i)
      out[i] = std::max(0.0, a * fitness[i] + b);
    return out;
  };
}

/// Sigma truncation: f' = max(0, f - (mean - c * sigma)); individuals more
/// than c standard deviations below the mean get zero reproductive mass.
[[nodiscard]] inline FitnessScaling sigma_truncation(double c = 2.0) {
  return [c](std::span<const double> fitness) {
    const double n = static_cast<double>(fitness.size());
    const double mean = std::accumulate(fitness.begin(), fitness.end(), 0.0) / n;
    double var = 0.0;
    for (double f : fitness) var += (f - mean) * (f - mean);
    const double sigma = std::sqrt(var / n);
    // A converged population has no signal to rescale; keep its mass.
    if (sigma < 1e-300)
      return std::vector<double>(fitness.begin(), fitness.end());
    std::vector<double> out(fitness.size());
    for (std::size_t i = 0; i < fitness.size(); ++i)
      out[i] = std::max(0.0, fitness[i] - (mean - c * sigma));
    return out;
  };
}

/// Power-law scaling f' = f^k on non-negative fitness (shifted if needed).
[[nodiscard]] inline FitnessScaling power(double k = 1.005) {
  return [k](std::span<const double> fitness) {
    const double lo = *std::min_element(fitness.begin(), fitness.end());
    const double shift = lo < 0.0 ? -lo : 0.0;
    std::vector<double> out(fitness.size());
    for (std::size_t i = 0; i < fitness.size(); ++i)
      out[i] = std::pow(fitness[i] + shift, k);
    return out;
  };
}

/// Rank transform: fitness replaced by rank (worst = 1 ... best = n), the
/// non-parametric alternative to scaling.
[[nodiscard]] inline FitnessScaling ranked() {
  return [](std::span<const double> fitness) {
    const std::size_t n = fitness.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return fitness[a] < fitness[b];
    });
    std::vector<double> out(n);
    for (std::size_t r = 0; r < n; ++r)
      out[idx[r]] = static_cast<double>(r + 1);
    return out;
  };
}

}  // namespace scaling

/// Wraps a selector so it sees scaled fitness values.
[[nodiscard]] inline Selector scaled(FitnessScaling scale, Selector inner) {
  return [scale = std::move(scale), inner = std::move(inner)](
             std::span<const double> fitness, Rng& rng) {
    const auto transformed = scale(fitness);
    return inner(transformed, rng);
  };
}

}  // namespace pga
