#pragma once
// Local search and memetic hybridization.
//
// The survey's framework lineage (ParadisEO: "parallel and distributed
// hybrid metaheuristics") pairs GAs with local search.  A LocalSearch
// polishes one individual under an evaluation budget; MemeticScheme applies
// it to each offspring of an inner scheme, in either of the classic modes:
//   * Lamarckian  — the improved genome replaces the original (acquired
//     traits are inherited);
//   * Baldwinian  — only the improved *fitness* is kept, genome unchanged
//     (learning smooths the landscape without changing genetics).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/evolution.hpp"
#include "core/mutation.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga {

/// Improves `ind` in place using at most `budget` evaluations; returns the
/// number of evaluations spent.  The individual must arrive evaluated and
/// leave evaluated.
template <class G>
using LocalSearch = std::function<std::size_t(
    Individual<G>&, const Problem<G>&, std::size_t budget, Rng&)>;

namespace local_search {

/// First-improvement bit-flip hill climbing over random loci.
[[nodiscard]] inline LocalSearch<BitString> bit_hill_climb() {
  return [](Individual<BitString>& ind, const Problem<BitString>& problem,
            std::size_t budget, Rng& rng) {
    std::size_t evals = 0;
    for (std::size_t step = 0; step < budget; ++step) {
      const std::size_t locus = rng.index(ind.genome.size());
      ind.genome.flip(locus);
      const double candidate = problem.fitness(ind.genome);
      ++evals;
      if (candidate > ind.fitness) {
        ind.fitness = candidate;  // keep the improvement
      } else {
        ind.genome.flip(locus);   // revert
      }
    }
    return evals;
  };
}

/// Generic mutation-based hill climbing: propose `budget` mutated copies,
/// keep each improvement (works for any genome given a mutation operator).
template <class G>
[[nodiscard]] LocalSearch<G> mutation_hill_climb(Mutation<G> proposal) {
  return [proposal = std::move(proposal)](Individual<G>& ind,
                                          const Problem<G>& problem,
                                          std::size_t budget, Rng& rng) {
    std::size_t evals = 0;
    for (std::size_t step = 0; step < budget; ++step) {
      G candidate = ind.genome;
      proposal(candidate, rng);
      const double f = problem.fitness(candidate);
      ++evals;
      if (f > ind.fitness) {
        ind.genome = std::move(candidate);
        ind.fitness = f;
      }
    }
    return evals;
  };
}

}  // namespace local_search

/// How local-search improvements are written back.
enum class MemeticMode { kLamarckian, kBaldwinian };

/// Wraps an inner evolution scheme: after each inner step, every individual
/// receives `budget_per_individual` polishing evaluations.
template <class G>
class MemeticScheme final : public EvolutionScheme<G> {
 public:
  MemeticScheme(std::unique_ptr<EvolutionScheme<G>> inner, LocalSearch<G> ls,
                std::size_t budget_per_individual,
                MemeticMode mode = MemeticMode::kLamarckian)
      : inner_(std::move(inner)),
        ls_(std::move(ls)),
        budget_(budget_per_individual),
        mode_(mode) {}

  std::size_t step(Population<G>& pop, const Problem<G>& problem,
                   Rng& rng) override {
    std::size_t evals = inner_->step(pop, problem, rng);
    for (auto& ind : pop) {
      Individual<G> polished = ind;
      evals += ls_(polished, problem, budget_, rng);
      if (mode_ == MemeticMode::kLamarckian) {
        ind = std::move(polished);
      } else {
        ind.fitness = polished.fitness;  // genome stays, fitness learned
      }
    }
    return evals;
  }

  [[nodiscard]] std::string name() const override {
    return inner_->name() +
           (mode_ == MemeticMode::kLamarckian ? "+lamarck" : "+baldwin");
  }

 private:
  std::unique_ptr<EvolutionScheme<G>> inner_;
  LocalSearch<G> ls_;
  std::size_t budget_;
  MemeticMode mode_;
};

}  // namespace pga
