#pragma once
// Problem interfaces.
//
// Engines in pgalib always *maximize* `fitness`.  Minimization problems
// (most numeric benchmarks) return the negated objective from `fitness()`
// and expose the raw value through `objective()`, so reports can print the
// familiar minimization numbers while the evolutionary machinery stays
// sign-uniform.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pga {

/// Problem classes used by Alba & Troya (2000) to span the difficulty
/// spectrum; experiment E3 sweeps migration policy across all five.
enum class ProblemClass { kEasy, kDeceptive, kMultimodal, kNpComplete, kEpistatic };

[[nodiscard]] constexpr const char* to_string(ProblemClass c) noexcept {
  switch (c) {
    case ProblemClass::kEasy: return "easy";
    case ProblemClass::kDeceptive: return "deceptive";
    case ProblemClass::kMultimodal: return "multimodal";
    case ProblemClass::kNpComplete: return "np-complete";
    case ProblemClass::kEpistatic: return "epistatic";
  }
  return "?";
}

/// Single-objective problem over genome type G.  Implementations must be
/// thread-compatible: `fitness` is called concurrently from slave threads and
/// must not mutate shared state.
template <class G>
class Problem {
 public:
  virtual ~Problem() = default;

  /// Fitness to maximize.
  [[nodiscard]] virtual double fitness(const G& genome) const = 0;

  /// Raw objective in the problem's natural sense (e.g. function value to
  /// minimize, tour length).  Defaults to `fitness`.
  [[nodiscard]] virtual double objective(const G& genome) const {
    return fitness(genome);
  }

  /// Known global optimum of `fitness`, when the benchmark has one.  Engines
  /// use it for success-rate and evaluations-to-solution accounting.
  [[nodiscard]] virtual std::optional<double> optimum_fitness() const {
    return std::nullopt;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Multi-objective problem (all objectives minimized, ZDT convention).  Used
/// by the specialized island model (Xiao & Armstrong 2003) experiments.
template <class G>
class MultiObjectiveProblem {
 public:
  virtual ~MultiObjectiveProblem() = default;

  [[nodiscard]] virtual std::size_t num_objectives() const = 0;

  /// Objective vector, each component minimized.
  [[nodiscard]] virtual std::vector<double> evaluate(const G& genome) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace pga
