#pragma once
// Problem interfaces.
//
// Engines in pgalib always *maximize* `fitness`.  Minimization problems
// (most numeric benchmarks) return the negated objective from `fitness()`
// and expose the raw value through `objective()`, so reports can print the
// familiar minimization numbers while the evolutionary machinery stays
// sign-uniform.

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/soa.hpp"

namespace pga {

/// Problem classes used by Alba & Troya (2000) to span the difficulty
/// spectrum; experiment E3 sweeps migration policy across all five.
enum class ProblemClass { kEasy, kDeceptive, kMultimodal, kNpComplete, kEpistatic };

[[nodiscard]] constexpr const char* to_string(ProblemClass c) noexcept {
  switch (c) {
    case ProblemClass::kEasy: return "easy";
    case ProblemClass::kDeceptive: return "deceptive";
    case ProblemClass::kMultimodal: return "multimodal";
    case ProblemClass::kNpComplete: return "np-complete";
    case ProblemClass::kEpistatic: return "epistatic";
  }
  return "?";
}

/// Single-objective problem over genome type G.  Implementations must be
/// thread-compatible: `fitness` is called concurrently from slave threads and
/// must not mutate shared state.
template <class G>
class Problem {
 public:
  virtual ~Problem() = default;

  /// Fitness to maximize.
  [[nodiscard]] virtual double fitness(const G& genome) const = 0;

  /// Raw objective in the problem's natural sense (e.g. function value to
  /// minimize, tour length).  Defaults to `fitness`.
  [[nodiscard]] virtual double objective(const G& genome) const {
    return fitness(genome);
  }

  /// Known global optimum of `fitness`, when the benchmark has one.  Engines
  /// use it for success-rate and evaluations-to-solution accounting.
  [[nodiscard]] virtual std::optional<double> optimum_fitness() const {
    return std::nullopt;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Batched fitness: writes fitness(genomes[k]) to out[k] for every k.
  /// The default forwards to the scalar virtual one genome at a time;
  /// problems whose per-evaluation overhead matters (table-bound kernels
  /// like NK landscapes) override it to amortize that overhead across the
  /// batch.  out.size() must be >= genomes.size().
  virtual void fitness_batch(std::span<const G> genomes,
                             std::span<double> out) const {
    for (std::size_t k = 0; k < genomes.size(); ++k)
      out[k] = fitness(genomes[k]);
  }

  /// True when `fitness_soa` is implemented; engines check this before
  /// packing a slab.
  [[nodiscard]] virtual bool has_soa_kernel() const noexcept { return false; }

  /// SoA kernel: fitness for every genome packed in `x`, written to
  /// out[0..x.count).  `out` must span the padded x.blocks() * kSoaLanes
  /// doubles; tail-lane values are unspecified.  Implementations must be
  /// bit-identical to the scalar `fitness` — kernels vectorize across
  /// genomes, never within one (see core/soa.hpp).  The default throws:
  /// callers gate on has_soa_kernel().
  virtual void fitness_soa(const SoaView<G>& x, std::span<double> out) const {
    (void)x;
    (void)out;
    throw std::logic_error(name() + ": fitness_soa called without a kernel");
  }
};

/// Evaluates a contiguous batch of genomes through the problem's best batch
/// path: the SoA kernel via `slab` when available, otherwise fitness_batch.
/// Writes fitness to out[0..genomes.size()).  The slab is caller-owned
/// scratch so repeated calls (slave chunk loops) stay allocation-free.
template <class G>
void evaluate_batch(const Problem<G>& problem, std::span<const G> genomes,
                    SoaSlab<G>& slab, std::span<double> out) {
  if constexpr (SoaTraits<G>::kEnabled) {
    if (problem.has_soa_kernel()) {
      const auto view = slab.gather(
          genomes.size(), [&](std::size_t k) -> const G& { return genomes[k]; });
      const auto fit = slab.fitness_scratch();
      problem.fitness_soa(view, fit);
      for (std::size_t k = 0; k < genomes.size(); ++k) out[k] = fit[k];
      return;
    }
  }
  problem.fitness_batch(genomes, out);
}

/// Multi-objective problem (all objectives minimized, ZDT convention).  Used
/// by the specialized island model (Xiao & Armstrong 2003) experiments.
template <class G>
class MultiObjectiveProblem {
 public:
  virtual ~MultiObjectiveProblem() = default;

  [[nodiscard]] virtual std::size_t num_objectives() const = 0;

  /// Objective vector, each component minimized.
  [[nodiscard]] virtual std::vector<double> evaluate(const G& genome) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace pga
