#pragma once
// Mutation operators.
//
// A Mutation perturbs one genome in place.  Per-gene rates default to the
// classic 1/L when the factory takes a rate of 0 ("auto").

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/genome.hpp"
#include "core/rng.hpp"

namespace pga {

template <class G>
using Mutation = std::function<void(G&, Rng&)>;

namespace mutation {

namespace detail {
[[nodiscard]] inline double effective_rate(double rate, std::size_t length) {
  return rate > 0.0 ? rate : 1.0 / static_cast<double>(std::max<std::size_t>(1, length));
}
}  // namespace detail

// ---------------------------------------------------------------------------
// BitString
// ---------------------------------------------------------------------------

/// Independent bit-flip with probability `rate` per bit (0 = auto 1/L).
[[nodiscard]] inline Mutation<BitString> bit_flip(double rate = 0.0) {
  return [rate](BitString& g, Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      if (rng.bernoulli(p)) g.flip(i);
  };
}

/// Flips exactly `count` distinct, uniformly chosen bits.  Used by takeover
/// experiments where the *number* of perturbations must be controlled.
[[nodiscard]] inline Mutation<BitString> exact_flips(std::size_t count) {
  return [count](BitString& g, Rng& rng) {
    for (std::size_t k = 0; k < count; ++k) g.flip(rng.index(g.size()));
  };
}

// ---------------------------------------------------------------------------
// RealVector
// ---------------------------------------------------------------------------

/// Gaussian creep mutation: each gene perturbed with probability `rate`
/// (0 = auto) by N(0, sigma_fraction * span), clamped to bounds.
[[nodiscard]] inline Mutation<RealVector> gaussian(Bounds bounds,
                                                   double sigma_fraction = 0.1,
                                                   double rate = 0.0) {
  return [bounds = std::move(bounds), sigma_fraction, rate](RealVector& g,
                                                            Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!rng.bernoulli(p)) continue;
      const double sigma = sigma_fraction * bounds.span(i);
      g[i] = bounds.clamp(i, g[i] + rng.gaussian(0.0, sigma));
    }
  };
}

/// Uniform reset mutation: replaces a gene by a fresh uniform draw from its
/// bounds with probability `rate` (0 = auto).
[[nodiscard]] inline Mutation<RealVector> uniform_reset(Bounds bounds,
                                                        double rate = 0.0) {
  return [bounds = std::move(bounds), rate](RealVector& g, Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      if (rng.bernoulli(p)) g[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
  };
}

/// Polynomial mutation (Deb) with distribution index `eta`; larger eta makes
/// smaller steps.  Applied per gene with probability `rate` (0 = auto).
[[nodiscard]] inline Mutation<RealVector> polynomial(Bounds bounds,
                                                     double eta = 20.0,
                                                     double rate = 0.0) {
  return [bounds = std::move(bounds), eta, rate](RealVector& g, Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!rng.bernoulli(p)) continue;
      const double lo = bounds.lower[i], hi = bounds.upper[i];
      if (hi <= lo) continue;
      const double x = g[i];
      const double d1 = (x - lo) / (hi - lo), d2 = (hi - x) / (hi - lo);
      const double u = rng.uniform();
      const double pow_exp = 1.0 / (eta + 1.0);
      double delta;
      if (u < 0.5) {
        const double bl = 2.0 * u + (1.0 - 2.0 * u) * std::pow(1.0 - d1, eta + 1.0);
        delta = std::pow(bl, pow_exp) - 1.0;
      } else {
        const double bl =
            2.0 * (1.0 - u) + 2.0 * (u - 0.5) * std::pow(1.0 - d2, eta + 1.0);
        delta = 1.0 - std::pow(bl, pow_exp);
      }
      g[i] = bounds.clamp(i, x + delta * (hi - lo));
    }
  };
}

// ---------------------------------------------------------------------------
// IntVector
// ---------------------------------------------------------------------------

/// Random-reset mutation on integer genes within their ranges.
[[nodiscard]] inline Mutation<IntVector> int_reset(IntRanges ranges,
                                                   double rate = 0.0) {
  return [ranges = std::move(ranges), rate](IntVector& g, Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      if (rng.bernoulli(p))
        g[i] = static_cast<int>(rng.integer(ranges.lower[i], ranges.upper[i]));
  };
}

/// Creep mutation on integer genes: +/- step within range.
[[nodiscard]] inline Mutation<IntVector> int_creep(IntRanges ranges,
                                                   int max_step = 1,
                                                   double rate = 0.0) {
  if (max_step < 1) throw std::invalid_argument("int_creep max_step >= 1");
  return [ranges = std::move(ranges), max_step, rate](IntVector& g, Rng& rng) {
    const double p = detail::effective_rate(rate, g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!rng.bernoulli(p)) continue;
      const int step = static_cast<int>(rng.integer(1, max_step));
      g[i] = ranges.clamp(i, g[i] + (rng.bernoulli(0.5) ? step : -step));
    }
  };
}

// ---------------------------------------------------------------------------
// Permutation
// ---------------------------------------------------------------------------

/// Swap mutation: exchanges two random positions.
[[nodiscard]] inline Mutation<Permutation> swap() {
  return [](Permutation& g, Rng& rng) {
    if (g.size() < 2) return;
    const std::size_t a = rng.index(g.size());
    std::size_t b = rng.index(g.size() - 1);
    if (b >= a) ++b;
    std::swap(g[a], g[b]);
  };
}

/// Insertion mutation: removes one element and reinserts it elsewhere.
[[nodiscard]] inline Mutation<Permutation> insertion() {
  return [](Permutation& g, Rng& rng) {
    if (g.size() < 2) return;
    const std::size_t from = rng.index(g.size());
    const std::size_t to = rng.index(g.size());
    if (from == to) return;
    const std::uint32_t v = g[from];
    if (from < to)
      std::move(g.order.begin() + static_cast<std::ptrdiff_t>(from) + 1,
                g.order.begin() + static_cast<std::ptrdiff_t>(to) + 1,
                g.order.begin() + static_cast<std::ptrdiff_t>(from));
    else
      std::move_backward(g.order.begin() + static_cast<std::ptrdiff_t>(to),
                         g.order.begin() + static_cast<std::ptrdiff_t>(from),
                         g.order.begin() + static_cast<std::ptrdiff_t>(from) + 1);
    g[to] = v;
  };
}

/// Inversion (2-opt style) mutation: reverses a random segment.
[[nodiscard]] inline Mutation<Permutation> inversion() {
  return [](Permutation& g, Rng& rng) {
    if (g.size() < 2) return;
    std::size_t a = rng.index(g.size()), b = rng.index(g.size());
    if (a > b) std::swap(a, b);
    std::reverse(g.order.begin() + static_cast<std::ptrdiff_t>(a),
                 g.order.begin() + static_cast<std::ptrdiff_t>(b) + 1);
  };
}

/// Scramble mutation: shuffles a random segment.
[[nodiscard]] inline Mutation<Permutation> scramble() {
  return [](Permutation& g, Rng& rng) {
    if (g.size() < 2) return;
    std::size_t a = rng.index(g.size()), b = rng.index(g.size());
    if (a > b) std::swap(a, b);
    for (std::size_t i = b; i > a; --i) {
      const std::size_t j = a + rng.index(i - a + 1);
      std::swap(g.order[i], g.order[j]);
    }
  };
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Applies `op` with probability `prob`, otherwise leaves the genome alone.
template <class G>
[[nodiscard]] Mutation<G> with_probability(double prob, Mutation<G> op) {
  return [prob, op = std::move(op)](G& g, Rng& rng) {
    if (rng.bernoulli(prob)) op(g, rng);
  };
}

/// Applies several mutations in sequence.
template <class G>
[[nodiscard]] Mutation<G> chain(std::vector<Mutation<G>> ops) {
  return [ops = std::move(ops)](G& g, Rng& rng) {
    for (const auto& op : ops) op(g, rng);
  };
}

/// The identity mutation (selection-only studies, experiment E4).
template <class G>
[[nodiscard]] Mutation<G> none() {
  return [](G&, Rng&) {};
}

}  // namespace mutation
}  // namespace pga
