// Fast AoSoA block packers for SoaSlab::gather (see core/soa.hpp).
//
// The gather is a 16 x dim transpose: each genome's contiguous elements
// scatter into stride-kSoaLanes rows.  Written element-by-element that costs
// more than the vectorized kernels it feeds (a strided store per element
// never vectorizes), so the hot path runs register-blocked transposes:
//
//   RealVector  4x4 double tiles  (AVX2 unpack + permute2f128; SSE2 2x2
//                                  pairs in the baseline clone)
//   BitString   16x16 byte tiles  (SSE2 punpck tree — one tile is a whole
//                                  block row set, and the packed row of 16
//                                  lanes is exactly one 16-byte store)
//
// Pure data movement — no arithmetic — so unlike the fitness kernels these
// need no contraction caveats: any instruction selection preserves bits.
// Function multiversioning is GCC/x86-64 only and predates sanitizer
// runtimes' ifunc support, mirroring the kernels.cpp clone guard; everything
// else takes the portable scalar loops.

#include "core/soa.hpp"

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define PGA_PACK_X86 1
#include <immintrin.h>
#else
#define PGA_PACK_X86 0
#endif

namespace pga::detail {

namespace {
constexpr std::size_t W = kSoaLanes;

// Scalar tails shared by every version.
inline void pack_real_tail(const double* const* lanes, std::size_t i0,
                           std::size_t dim, double* dst) noexcept {
  for (std::size_t i = i0; i < dim; ++i)
    for (std::size_t l = 0; l < W; ++l) dst[i * W + l] = lanes[l][i];
}

inline void pack_bits_tail(const std::uint8_t* const* lanes, std::size_t i0,
                           std::size_t dim, std::uint8_t* dst) noexcept {
  for (std::size_t i = i0; i < dim; ++i)
    for (std::size_t l = 0; l < W; ++l) dst[i * W + l] = lanes[l][i];
}
}  // namespace

#if PGA_PACK_X86

__attribute__((target("avx2"))) void pack_real_block(
    const double* const* lanes, std::size_t dim, double* dst) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    for (std::size_t l = 0; l < W; l += 4) {
      // 4x4 tile: rows are 4 consecutive elements of 4 genomes; unpack +
      // 128-bit permutes give the 4 lane-major output rows.
      const __m256d r0 = _mm256_loadu_pd(lanes[l + 0] + i);
      const __m256d r1 = _mm256_loadu_pd(lanes[l + 1] + i);
      const __m256d r2 = _mm256_loadu_pd(lanes[l + 2] + i);
      const __m256d r3 = _mm256_loadu_pd(lanes[l + 3] + i);
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
      double* o = dst + i * W + l;
      _mm256_storeu_pd(o + 0 * W, _mm256_permute2f128_pd(t0, t2, 0x20));
      _mm256_storeu_pd(o + 1 * W, _mm256_permute2f128_pd(t1, t3, 0x20));
      _mm256_storeu_pd(o + 2 * W, _mm256_permute2f128_pd(t0, t2, 0x31));
      _mm256_storeu_pd(o + 3 * W, _mm256_permute2f128_pd(t1, t3, 0x31));
    }
  }
  for (; i + 2 <= dim; i += 2) {
    for (std::size_t l = 0; l < W; l += 2) {
      const __m128d a = _mm_loadu_pd(lanes[l + 0] + i);
      const __m128d b = _mm_loadu_pd(lanes[l + 1] + i);
      _mm_storeu_pd(dst + (i + 0) * W + l, _mm_unpacklo_pd(a, b));
      _mm_storeu_pd(dst + (i + 1) * W + l, _mm_unpackhi_pd(a, b));
    }
  }
  pack_real_tail(lanes, i, dim, dst);
}

__attribute__((target("default"))) void pack_real_block(
    const double* const* lanes, std::size_t dim, double* dst) noexcept {
  // Baseline x86-64 always has SSE2: 2x2 tiles halve the strided-store count.
  std::size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    for (std::size_t l = 0; l < W; l += 2) {
      const __m128d a = _mm_loadu_pd(lanes[l + 0] + i);
      const __m128d b = _mm_loadu_pd(lanes[l + 1] + i);
      _mm_storeu_pd(dst + (i + 0) * W + l, _mm_unpacklo_pd(a, b));
      _mm_storeu_pd(dst + (i + 1) * W + l, _mm_unpackhi_pd(a, b));
    }
  }
  pack_real_tail(lanes, i, dim, dst);
}

void pack_bits_block(const std::uint8_t* const* lanes, std::size_t dim,
                     std::uint8_t* dst) noexcept {
  // 16x16 byte transpose (SSE2 punpck tree).  One tile covers 16 elements
  // of all 16 lanes, and each transposed row is exactly one 16-byte store.
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m128i r[16];
    for (std::size_t l = 0; l < 16; ++l)
      r[l] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lanes[l] + i));
    __m128i t[16];
    for (std::size_t l = 0; l < 8; ++l) {
      t[2 * l + 0] = _mm_unpacklo_epi8(r[2 * l], r[2 * l + 1]);
      t[2 * l + 1] = _mm_unpackhi_epi8(r[2 * l], r[2 * l + 1]);
    }
    for (std::size_t l = 0; l < 4; ++l) {
      r[4 * l + 0] = _mm_unpacklo_epi16(t[4 * l + 0], t[4 * l + 2]);
      r[4 * l + 1] = _mm_unpackhi_epi16(t[4 * l + 0], t[4 * l + 2]);
      r[4 * l + 2] = _mm_unpacklo_epi16(t[4 * l + 1], t[4 * l + 3]);
      r[4 * l + 3] = _mm_unpackhi_epi16(t[4 * l + 1], t[4 * l + 3]);
    }
    for (std::size_t l = 0; l < 2; ++l) {
      t[8 * l + 0] = _mm_unpacklo_epi32(r[8 * l + 0], r[8 * l + 4]);
      t[8 * l + 1] = _mm_unpackhi_epi32(r[8 * l + 0], r[8 * l + 4]);
      t[8 * l + 2] = _mm_unpacklo_epi32(r[8 * l + 1], r[8 * l + 5]);
      t[8 * l + 3] = _mm_unpackhi_epi32(r[8 * l + 1], r[8 * l + 5]);
      t[8 * l + 4] = _mm_unpacklo_epi32(r[8 * l + 2], r[8 * l + 6]);
      t[8 * l + 5] = _mm_unpackhi_epi32(r[8 * l + 2], r[8 * l + 6]);
      t[8 * l + 6] = _mm_unpacklo_epi32(r[8 * l + 3], r[8 * l + 7]);
      t[8 * l + 7] = _mm_unpackhi_epi32(r[8 * l + 3], r[8 * l + 7]);
    }
    __m128i* out = reinterpret_cast<__m128i*>(dst + i * W);
    for (std::size_t k = 0; k < 8; ++k) {
      _mm_storeu_si128(out + 2 * k + 0, _mm_unpacklo_epi64(t[k], t[k + 8]));
      _mm_storeu_si128(out + 2 * k + 1, _mm_unpackhi_epi64(t[k], t[k + 8]));
    }
  }
  pack_bits_tail(lanes, i, dim, dst);
}

#else  // !PGA_PACK_X86

void pack_real_block(const double* const* lanes, std::size_t dim,
                     double* dst) noexcept {
  pack_real_tail(lanes, 0, dim, dst);
}

void pack_bits_block(const std::uint8_t* const* lanes, std::size_t dim,
                     std::uint8_t* dst) noexcept {
  pack_bits_tail(lanes, 0, dim, dst);
}

#endif  // PGA_PACK_X86

}  // namespace pga::detail
