#pragma once
// Deterministic random number generation for pgalib.
//
// Every stochastic component in the library takes an explicit `Rng&`, never a
// global generator: parallel genetic algorithms are only debuggable and
// benchmarkable when a run is a pure function of its seed.  Demes, slaves and
// cellular blocks each receive an independent stream derived with
// `Rng::split`, so the trajectory of one deme does not depend on how many
// numbers its neighbours consumed (crucial for sync-vs-async comparisons).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64
// as its authors recommend.  Both are implemented here from the public-domain
// reference algorithms; no <random> engine is used for generation (only the
// distributions are hand-rolled too, so results are bit-stable across
// standard libraries).

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pga {

/// One step of the splitmix64 sequence; used for seeding and stream-splitting.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based (stateless) RNG for lane-splittable sampling.
///
/// `bits(ctr)` is exactly the (ctr+1)-th output of the splitmix64 stream
/// seeded at `key` — but computed directly from the counter, with no
/// sequential state.  Model-based engines (core/model_ga.hpp) assign every
/// Bernoulli draw a fixed counter (candidate * dim + locus) so the sampled
/// bits are a pure function of (key, counter): any partition of the counter
/// space across threads, SIMD lanes, or cluster shards reproduces the same
/// bits, and a shard's contribution can be regenerated after a failure
/// without perturbing the trajectory.  The finalizer is splitmix64's
/// (BigCrush-clean per Steele et al.); unlike `Rng` it has no sequential
/// dependency, so the compiler can vectorize a loop of `bits(base + i)`.
class CounterRng {
 public:
  /// Wraps an already-mixed key verbatim.  Use keyed()/derive() to build
  /// keys from user seeds and stream salts.
  explicit constexpr CounterRng(std::uint64_t key) noexcept : key_(key) {}

  /// Mixes a user seed into a key (mirrors Rng's splitmix64 seeding).
  [[nodiscard]] static constexpr CounterRng keyed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    return CounterRng{splitmix64(sm)};
  }

  /// Derives an independent stream for a child component (epoch, shard...).
  /// Same golden-ratio salting as Rng::split, so adjacent salts decorrelate.
  [[nodiscard]] constexpr CounterRng derive(std::uint64_t salt) const noexcept {
    std::uint64_t sm = key_ ^ (salt * 0x9e3779b97f4a7c15ULL);
    return CounterRng{splitmix64(sm)};
  }

  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return key_; }

  /// 64 random bits for counter `ctr` under key `key` (static so SIMD
  /// kernels can inline it without carrying the object).
  [[nodiscard]] static constexpr std::uint64_t bits_at(
      std::uint64_t key, std::uint64_t ctr) noexcept {
    std::uint64_t z = key + (ctr + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t ctr) const noexcept {
    return bits_at(key_, ctr);
  }

  /// Uniform double in [0, 1) with 53 bits of resolution (same construction
  /// as Rng::uniform).
  [[nodiscard]] constexpr double uniform(std::uint64_t ctr) const noexcept {
    return static_cast<double>(bits(ctr) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.  Defined as the exact
  /// integer comparison (bits >> 11) < p * 2^53, which is equivalent to
  /// uniform(ctr) < p (both sides scale by an exact power of two) but saves
  /// one multiply in the sampling hot loop — kernels compare against a
  /// per-locus precomputed threshold p * 0x1p53.
  [[nodiscard]] constexpr bool bernoulli(double p,
                                         std::uint64_t ctr) const noexcept {
    return static_cast<double>(bits(ctr) >> 11) < p * 0x1.0p53;
  }

 private:
  std::uint64_t key_;
};

/// xoshiro256** PRNG with hand-rolled, bit-stable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Derives an independent generator for a child component (deme, node,
  /// island...).  Mixing the salt through splitmix64 decorrelates children
  /// with adjacent indices.
  [[nodiscard]] Rng split(std::uint64_t salt) const noexcept {
    std::uint64_t sm = state_[0] ^ (salt * 0x9e3779b97f4a7c15ULL) ^ state_[3];
    Rng child{splitmix64(sm)};
    return child;
  }

  /// Raw 64 uniformly random bits.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (lets Rng drive std::shuffle).
  [[nodiscard]] std::uint64_t operator()() noexcept { return next(); }
  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.  Uses Lemire-style rejection
  /// to avoid modulo bias.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept {
    const std::uint64_t bound = static_cast<std::uint64_t>(n);
    // Threshold for rejection sampling: 2^64 mod bound.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return static_cast<std::size_t>(r % bound);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] long long integer(long long lo, long long hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1u;
    return lo + static_cast<long long>(index(static_cast<std::size_t>(span)));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal variate (Marsaglia polar method; caches the spare).
  [[nodiscard]] double gaussian() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential variate with rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / lambda;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pga
