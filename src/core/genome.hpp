#pragma once
// Genome representations used across pgalib.
//
// The survey's application sections exercise four chromosome families:
// binary strings (OneMax, traps, MAXSAT, feature selection), real-valued
// vectors (function optimization, wing design, spectral estimation), integer
// vectors (reactor core parameters, decision attributes per Pelikan 2002) and
// permutations (TSP, scheduling).  All four are plain value types: copyable,
// movable, equality-comparable, hashable, with deterministic `random`
// factories that take an explicit Rng.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace pga {

// ---------------------------------------------------------------------------
// BitString
// ---------------------------------------------------------------------------

/// Fixed-length binary chromosome.  Bits are stored one-per-byte: the library
/// mutates and crosses over at bit granularity far more often than it scans,
/// and byte storage keeps the operators branch-free and simple.
struct BitString {
  std::vector<std::uint8_t> bits;

  BitString() = default;
  explicit BitString(std::size_t n, std::uint8_t fill = 0) : bits(n, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits.empty(); }

  [[nodiscard]] std::uint8_t& operator[](std::size_t i) { return bits[i]; }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return bits[i]; }

  /// Number of set bits (the OneMax fitness).
  [[nodiscard]] std::size_t count_ones() const noexcept {
    return static_cast<std::size_t>(
        std::count(bits.begin(), bits.end(), std::uint8_t{1}));
  }

  /// Hamming distance to another string of the same length.
  [[nodiscard]] std::size_t hamming(const BitString& other) const {
    std::size_t d = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) d += (bits[i] != other.bits[i]);
    return d;
  }

  void flip(std::size_t i) { bits[i] ^= std::uint8_t{1}; }

  /// Decodes bits [first, first+width) as an unsigned integer, MSB first.
  [[nodiscard]] std::uint64_t decode_uint(std::size_t first,
                                          std::size_t width) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) v = (v << 1) | bits[first + i];
    return v;
  }

  /// Uniformly random string of n bits.
  [[nodiscard]] static BitString random(std::size_t n, Rng& rng) {
    BitString s(n);
    for (auto& b : s.bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
    return s;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    out.reserve(bits.size());
    for (auto b : bits) out.push_back(b ? '1' : '0');
    return out;
  }

  friend bool operator==(const BitString&, const BitString&) = default;
};

// ---------------------------------------------------------------------------
// RealVector
// ---------------------------------------------------------------------------

/// Per-dimension box bounds for real-coded chromosomes.  Operators clamp into
/// these; the adaptive-range GA (Oyama 2000) shrinks them over time.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  Bounds() = default;
  /// Uniform bounds [lo, hi] replicated over n dimensions.
  Bounds(std::size_t n, double lo, double hi)
      : lower(n, lo), upper(n, hi) {}

  [[nodiscard]] std::size_t size() const noexcept { return lower.size(); }

  [[nodiscard]] double clamp(std::size_t dim, double v) const {
    return std::min(std::max(v, lower[dim]), upper[dim]);
  }

  /// Width of dimension `dim`.
  [[nodiscard]] double span(std::size_t dim) const {
    return upper[dim] - lower[dim];
  }

  friend bool operator==(const Bounds&, const Bounds&) = default;
};

/// Real-coded chromosome: a point in a box-bounded R^n.
struct RealVector {
  std::vector<double> values;

  RealVector() = default;
  explicit RealVector(std::size_t n, double fill = 0.0) : values(n, fill) {}
  explicit RealVector(std::vector<double> v) : values(std::move(v)) {}

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] double& operator[](std::size_t i) { return values[i]; }
  [[nodiscard]] double operator[](std::size_t i) const { return values[i]; }

  /// Euclidean distance to another vector of the same dimension.
  [[nodiscard]] double distance(const RealVector& other) const {
    double s = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double d = values[i] - other.values[i];
      s += d * d;
    }
    return std::sqrt(s);
  }

  /// Uniformly random point inside `bounds`.
  [[nodiscard]] static RealVector random(const Bounds& bounds, Rng& rng) {
    RealVector v(bounds.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      v.values[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
    return v;
  }

  friend bool operator==(const RealVector&, const RealVector&) = default;
};

// ---------------------------------------------------------------------------
// IntVector
// ---------------------------------------------------------------------------

/// Integer-coded chromosome with per-gene inclusive ranges, used for mixed
/// discrete design spaces (reactor zone materials, decision-graph attributes).
struct IntRanges {
  std::vector<int> lower;
  std::vector<int> upper;

  IntRanges() = default;
  IntRanges(std::size_t n, int lo, int hi) : lower(n, lo), upper(n, hi) {}

  [[nodiscard]] std::size_t size() const noexcept { return lower.size(); }

  [[nodiscard]] int clamp(std::size_t dim, int v) const {
    return std::min(std::max(v, lower[dim]), upper[dim]);
  }

  friend bool operator==(const IntRanges&, const IntRanges&) = default;
};

struct IntVector {
  std::vector<int> values;

  IntVector() = default;
  explicit IntVector(std::size_t n, int fill = 0) : values(n, fill) {}
  explicit IntVector(std::vector<int> v) : values(std::move(v)) {}

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] int& operator[](std::size_t i) { return values[i]; }
  [[nodiscard]] int operator[](std::size_t i) const { return values[i]; }

  [[nodiscard]] static IntVector random(const IntRanges& ranges, Rng& rng) {
    IntVector v(ranges.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      v.values[i] =
          static_cast<int>(rng.integer(ranges.lower[i], ranges.upper[i]));
    return v;
  }

  friend bool operator==(const IntVector&, const IntVector&) = default;
};

// ---------------------------------------------------------------------------
// Permutation
// ---------------------------------------------------------------------------

/// Permutation chromosome over {0, ..., n-1} (tours, schedules).
struct Permutation {
  std::vector<std::uint32_t> order;

  Permutation() = default;
  /// Identity permutation of length n.
  explicit Permutation(std::size_t n) : order(n) {
    std::iota(order.begin(), order.end(), 0u);
  }

  [[nodiscard]] std::size_t size() const noexcept { return order.size(); }
  [[nodiscard]] std::uint32_t& operator[](std::size_t i) { return order[i]; }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
    return order[i];
  }

  /// True iff `order` is a permutation of {0..n-1}.  Operators preserve this
  /// invariant; tests assert it property-style.
  [[nodiscard]] bool is_valid() const {
    std::vector<std::uint8_t> seen(order.size(), 0);
    for (auto v : order) {
      if (v >= order.size() || seen[v]) return false;
      seen[v] = 1;
    }
    return true;
  }

  /// Position of city `v` in the tour.
  [[nodiscard]] std::size_t position_of(std::uint32_t v) const {
    return static_cast<std::size_t>(
        std::find(order.begin(), order.end(), v) - order.begin());
  }

  [[nodiscard]] static Permutation random(std::size_t n, Rng& rng) {
    Permutation p(n);
    // Fisher-Yates with our own index() so results are seed-stable across
    // standard libraries (std::shuffle's consumption pattern is unspecified).
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = rng.index(i);
      std::swap(p.order[i - 1], p.order[j]);
    }
    return p;
  }

  friend bool operator==(const Permutation&, const Permutation&) = default;
};

}  // namespace pga
