#pragma once
// Panmictic evolution schemes: generational (with elitism and a generation
// gap) and steady-state.  Together with the cellular scheme in cellular.hpp
// these are the three island "reproductive loop types" Alba & Troya (2000,
// 2002) compare; every scheme implements the same `EvolutionScheme` interface
// so the island model can mix them freely.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/crossover.hpp"
#include "core/mutation.hpp"
#include "core/population.hpp"
#include "core/workspace.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/selection.hpp"
#include "core/statistics.hpp"
#include "core/termination.hpp"
#include "exec/parallelism.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"

namespace pga {

/// The variation pipeline shared by all schemes.
template <class G>
struct Operators {
  Selector select;
  Crossover<G> cross;
  Mutation<G> mutate;
  /// Probability that a selected pair undergoes crossover (otherwise the
  /// parents are cloned into the offspring slots).
  double crossover_rate = 0.9;
  /// Optional allocation-free crossover (crossover::*_in_place).  When set,
  /// schemes apply it to the already-copied child slots instead of calling
  /// `cross`; the trajectory is identical because the in-place factories
  /// consume the RNG exactly like their pair-returning counterparts.
  CrossoverInPlace<G> cross_in_place;
};

/// One reproductive loop type.  `step` advances the population by one
/// generation-equivalent (a number of offspring comparable to the population
/// size, so different schemes can be compared at equal evaluation budgets)
/// and returns the number of fitness evaluations it performed.
template <class G>
class EvolutionScheme {
 public:
  virtual ~EvolutionScheme() = default;
  virtual std::size_t step(Population<G>& pop, const Problem<G>& problem,
                           Rng& rng) = 0;

  /// Executor-aware step: identical trajectory to `step` (same RNG
  /// consumption, same offspring, same survivor ordering), but schemes that
  /// have a parallelizable evaluation phase may run it through `par`.  The
  /// default ignores the executor, so schemes whose inner loop is inherently
  /// sequential (steady-state, cellular) stay correct without changes.
  virtual std::size_t step_exec(Population<G>& pop, const Problem<G>& problem,
                                Rng& rng, const exec::Parallelism& par) {
    (void)par;
    return step(pop, problem, rng);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

// ---------------------------------------------------------------------------
// Generational scheme
// ---------------------------------------------------------------------------

/// Classic generational GA.  `elitism` best individuals survive unchanged;
/// `generation_gap` (0, 1] controls the fraction of the population replaced
/// each generation (Bethke 1976 studied GAs with a generational gap).
template <class G>
class GenerationalScheme final : public EvolutionScheme<G> {
 public:
  GenerationalScheme(Operators<G> ops, std::size_t elitism = 1,
                     double generation_gap = 1.0)
      : ops_(std::move(ops)), elitism_(elitism), gap_(generation_gap) {
    if (gap_ <= 0.0 || gap_ > 1.0)
      throw std::invalid_argument("generation_gap must be in (0, 1]");
  }

  std::size_t step(Population<G>& pop, const Problem<G>& problem,
                   Rng& rng) override {
    return step_impl(pop, problem, rng, nullptr);
  }

  /// Same generation as `step` — variation stays sequential so the RNG
  /// stream is consumed identically — but the offspring evaluation batch
  /// runs through the executor.
  std::size_t step_exec(Population<G>& pop, const Problem<G>& problem,
                        Rng& rng, const exec::Parallelism& par) override {
    return step_impl(pop, problem, rng, &par);
  }

 private:
  std::size_t step_impl(Population<G>& pop, const Problem<G>& problem,
                        Rng& rng, const exec::Parallelism* par) {
    const std::size_t n = pop.size();
    std::size_t replace =
        static_cast<std::size_t>(gap_ * static_cast<double>(n));
    replace = std::max<std::size_t>(replace, 1);
    replace = std::min(replace, n > elitism_ ? n - elitism_ : 0);

    pop.fitness_values_into(ws_.fitness);

    // Offspring for the replaced fraction, built in persistent slots: each
    // slot's genome keeps its capacity across generations, so the copies
    // below are allocation-free after warmup.  A dropped second child (odd
    // `replace`) lands in ws_.spare — its crossover RNG is still consumed,
    // exactly as in the historical pair-returning loop.
    ws_.offspring.resize(replace);
    std::size_t made = 0;
    while (made < replace) {
      const std::size_t i = ops_.select(ws_.fitness, rng);
      const std::size_t j = ops_.select(ws_.fitness, rng);
      Individual<G>& s1 = ws_.offspring[made];
      Individual<G>& s2 =
          (made + 1 < replace) ? ws_.offspring[made + 1] : ws_.spare;
      s1.genome = pop[i].genome;
      s2.genome = pop[j].genome;
      s1.evaluated = s2.evaluated = false;
      if (rng.bernoulli(ops_.crossover_rate)) {
        if (ops_.cross_in_place) {
          ops_.cross_in_place(s1.genome, s2.genome, rng);
        } else {
          auto [a, b] = ops_.cross(pop[i].genome, pop[j].genome, rng);
          s1.genome = std::move(a);
          s2.genome = std::move(b);
        }
      }
      ops_.mutate(s1.genome, rng);
      ++made;
      if (made < replace) {
        ops_.mutate(s2.genome, rng);
        ++made;
      }
    }

    // Survivors: elite first, then the best of the rest up to n - replace.
    // Offspring are swapped (not moved) into the staging vector so their
    // slot capacity circulates back into the workspace, and the population's
    // member vector is swapped (not reassigned) so its evaluation scratch
    // (dirty list, SoA slab) survives the generation.
    pop.sort_descending();
    ws_.next.resize(n);
    for (std::size_t k = 0; k < n - replace; ++k) ws_.next[k] = pop[k];
    for (std::size_t r = 0; r < replace; ++r)
      std::swap(ws_.next[n - replace + r], ws_.offspring[r]);
    pop.members().swap(ws_.next);
    return par ? pop.evaluate_all(problem, *par) : pop.evaluate_all(problem);
  }

 public:
  [[nodiscard]] std::string name() const override { return "generational"; }

 private:
  Operators<G> ops_;
  std::size_t elitism_;
  double gap_;
  GenWorkspace<G> ws_;
};

// ---------------------------------------------------------------------------
// Steady-state scheme
// ---------------------------------------------------------------------------

/// Steady-state GA: each micro-iteration creates one offspring pair and
/// inserts it by replacing the current worst individuals (if better).  One
/// `step` performs `pop.size()` offspring so budgets match the generational
/// scheme; set `offspring_per_step` to customize.
template <class G>
class SteadyStateScheme final : public EvolutionScheme<G> {
 public:
  explicit SteadyStateScheme(Operators<G> ops, std::size_t offspring_per_step = 0)
      : ops_(std::move(ops)), offspring_per_step_(offspring_per_step) {}

  std::size_t step(Population<G>& pop, const Problem<G>& problem,
                   Rng& rng) override {
    const std::size_t budget =
        offspring_per_step_ ? offspring_per_step_ : pop.size();
    std::size_t evals = 0;
    // The fitness snapshot is refilled once and maintained incrementally on
    // each replacement — the values the selector sees are exactly what a
    // fresh fitness_values() would return, without the per-offspring
    // allocate-and-copy the historical loop paid.
    pop.fitness_values_into(ws_.fitness);
    ws_.offspring.resize(2);
    for (std::size_t k = 0; k < budget; ++k) {
      const std::size_t i = ops_.select(ws_.fitness, rng);
      const std::size_t j = ops_.select(ws_.fitness, rng);
      G& child = ws_.offspring[0].genome;
      child = pop[i].genome;
      if (rng.bernoulli(ops_.crossover_rate)) {
        if (ops_.cross_in_place) {
          G& other = ws_.offspring[1].genome;
          other = pop[j].genome;
          ops_.cross_in_place(child, other, rng);
          if (!rng.bernoulli(0.5)) std::swap(child, other);
        } else {
          auto [a, b] = ops_.cross(pop[i].genome, pop[j].genome, rng);
          child = rng.bernoulli(0.5) ? std::move(a) : std::move(b);
        }
      }
      ops_.mutate(child, rng);
      const double f = problem.fitness(child);
      ++evals;
      const std::size_t worst = pop.worst_index();
      if (f > pop[worst].fitness) {
        pop[worst].genome = child;  // capacity-reusing copy into the slot
        pop[worst].fitness = f;
        pop[worst].evaluated = true;
        ws_.fitness[worst] = f;
      }
    }
    return evals;
  }

  [[nodiscard]] std::string name() const override { return "steady-state"; }

 private:
  Operators<G> ops_;
  std::size_t offspring_per_step_;
  GenWorkspace<G> ws_;
};

// ---------------------------------------------------------------------------
// Run driver
// ---------------------------------------------------------------------------

/// Outcome of driving a scheme to a stop condition.
template <class G>
struct RunResult {
  Individual<G> best{};
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  bool reached_target = false;
  /// Cumulative evaluations when the target was first reached (equals
  /// `evaluations` if the target was never reached).
  std::size_t evals_to_target = 0;
  std::vector<GenStats> history;
};

/// Drives `scheme` on `pop` until `stop` fires.  Records per-generation
/// statistics when `record_history` is set; when `trace` is live, the same
/// snapshots are emitted as gen_stats events (rank 0, generation index as
/// the virtual timestamp) so sequential runs audit with obs::RunReport too.
template <class G>
RunResult<G> run(EvolutionScheme<G>& scheme, Population<G>& pop,
                 const Problem<G>& problem, const StopCondition& stop, Rng& rng,
                 bool record_history = false, obs::Tracer trace = {}) {
  RunResult<G> result;
  result.evaluations += pop.evaluate_all(problem);

  double best_so_far = pop.best_fitness();
  std::size_t stagnant = 0;

  obs::GenerationProbe<G> probe(trace, /*rank=*/0);
  std::size_t probed_evals = 0;
  auto snapshot = [&](std::size_t gen) {
    if (!record_history && !trace) return;
    GenStats s;
    s.generation = gen;
    s.evaluations = result.evaluations;
    const auto [worst_i, best_i] = pop.minmax_indices();
    s.best = pop[best_i].fitness;
    s.mean = pop.mean_fitness();
    s.worst = pop[worst_i].fitness;
    trace.gen_stats(0, static_cast<double>(gen), gen, s.evaluations, s.best,
                    s.mean, s.worst);
    probe.observe(pop, static_cast<double>(gen), gen,
                  result.evaluations - probed_evals);
    probed_evals = result.evaluations;
    if (record_history) result.history.push_back(s);
  };
  snapshot(0);

  if (stop.target_reached(best_so_far)) {
    result.reached_target = true;
    result.evals_to_target = result.evaluations;
  }

  while (!result.reached_target && result.generations < stop.max_generations &&
         result.evaluations < stop.max_evaluations) {
    result.evaluations += scheme.step(pop, problem, rng);
    ++result.generations;
    snapshot(result.generations);

    const double best = pop.best_fitness();
    if (best > best_so_far + 1e-15) {
      best_so_far = best;
      stagnant = 0;
    } else {
      ++stagnant;
    }
    if (stop.target_reached(best)) {
      result.reached_target = true;
      result.evals_to_target = result.evaluations;
      break;
    }
    if (stop.stagnation_generations && stagnant >= stop.stagnation_generations)
      break;
  }

  if (!result.reached_target) result.evals_to_target = result.evaluations;
  result.best = pop.best();
  return result;
}

}  // namespace pga
