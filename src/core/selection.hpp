#pragma once
// Selection operators.
//
// A Selector maps a span of fitness values to the index of one chosen parent.
// All classic schemes the survey's basics section lists are provided:
// fitness-proportionate (roulette), stochastic universal sampling, k-ary
// tournament, linear ranking, truncation and Boltzmann selection.  Selection
// intensity differences between these drive experiment E4 (takeover time).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"

namespace pga {

/// Picks the index of one parent given the population's fitness values.
using Selector = std::function<std::size_t(std::span<const double>, Rng&)>;

namespace selection {

namespace detail {
/// Produces a non-negative selection mass (roulette and SUS need one).
/// Positive fitness is used as-is — classic fitness-proportionate behaviour —
/// while populations containing non-positive values are window-shifted so the
/// worst individual keeps a sliver of probability.
/// Caller-provided-buffer form: refills `mass` in place so steady-state
/// selection allocates nothing after warmup.
inline void nonnegative_mass(std::span<const double> fitness,
                             std::vector<double>& mass) {
  const double lo = *std::min_element(fitness.begin(), fitness.end());
  mass.resize(fitness.size());
  if (lo > 0.0) {
    std::copy(fitness.begin(), fitness.end(), mass.begin());
    return;
  }
  const double hi = *std::max_element(fitness.begin(), fitness.end());
  const double eps = (hi > lo) ? (hi - lo) * 1e-9 : 1.0;
  for (std::size_t i = 0; i < fitness.size(); ++i)
    mass[i] = fitness[i] - lo + eps;
}

[[nodiscard]] inline std::vector<double> nonnegative_mass(
    std::span<const double> fitness) {
  std::vector<double> mass;
  nonnegative_mass(fitness, mass);
  return mass;
}

/// Samples one index proportionally to `mass` (which must be non-negative
/// with positive total).
[[nodiscard]] inline std::size_t sample_proportional(
    std::span<const double> mass, Rng& rng) {
  const double total = std::accumulate(mass.begin(), mass.end(), 0.0);
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    r -= mass[i];
    if (r <= 0.0) return i;
  }
  return mass.size() - 1;  // numerical tail
}
}  // namespace detail

/// Fitness-proportionate (roulette-wheel) selection.  The mass buffer lives
/// in the closure (each Selector copy gets its own, so per-deme copies stay
/// thread-safe) and is reused across calls — no steady-state allocation.
[[nodiscard]] inline Selector roulette() {
  return [mass = std::vector<double>()](std::span<const double> fitness,
                                        Rng& rng) mutable {
    detail::nonnegative_mass(fitness, mass);
    return detail::sample_proportional(mass, rng);
  };
}

/// k-ary tournament selection: sample k competitors uniformly with
/// replacement, return the fittest.  k >= 1; k = 1 is uniform-random.
[[nodiscard]] inline Selector tournament(std::size_t k) {
  if (k == 0) throw std::invalid_argument("tournament size must be >= 1");
  return [k](std::span<const double> fitness, Rng& rng) {
    std::size_t best = rng.index(fitness.size());
    for (std::size_t i = 1; i < k; ++i) {
      const std::size_t c = rng.index(fitness.size());
      if (fitness[c] > fitness[best]) best = c;
    }
    return best;
  };
}

/// Linear ranking selection with pressure s in (1, 2]: the best individual
/// gets expected s offspring, the worst 2-s (Baker 1985).
[[nodiscard]] inline Selector linear_rank(double s = 1.8) {
  if (s <= 1.0 || s > 2.0)
    throw std::invalid_argument("linear_rank pressure must be in (1, 2]");
  return [s, idx = std::vector<std::size_t>(),
          mass = std::vector<double>()](std::span<const double> fitness,
                                        Rng& rng) mutable {
    const std::size_t n = fitness.size();
    // rank[i] = number of individuals strictly worse than i.
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });
    mass.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      const double p =
          (2.0 - s) + 2.0 * (s - 1.0) * static_cast<double>(r) /
                          static_cast<double>(n > 1 ? n - 1 : 1);
      mass[idx[r]] = p;
    }
    return detail::sample_proportional(mass, rng);
  };
}

/// Truncation selection: choose uniformly among the top `fraction` of the
/// population (fraction in (0, 1]).
[[nodiscard]] inline Selector truncation(double fraction = 0.5) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("truncation fraction must be in (0, 1]");
  return [fraction, idx = std::vector<std::size_t>()](
             std::span<const double> fitness, Rng& rng) mutable {
    const std::size_t n = fitness.size();
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(n))));
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     idx.end(), [&](std::size_t a, std::size_t b) {
                       return fitness[a] > fitness[b];
                     });
    return idx[rng.index(keep)];
  };
}

/// Boltzmann selection: probability proportional to exp(fitness / T).
/// Lower temperature -> higher selection pressure.
[[nodiscard]] inline Selector boltzmann(double temperature) {
  if (temperature <= 0.0)
    throw std::invalid_argument("boltzmann temperature must be > 0");
  return [temperature, mass = std::vector<double>()](
             std::span<const double> fitness, Rng& rng) mutable {
    // Stabilize by subtracting the max before exponentiating.
    const double hi = *std::max_element(fitness.begin(), fitness.end());
    mass.resize(fitness.size());
    for (std::size_t i = 0; i < fitness.size(); ++i)
      mass[i] = std::exp((fitness[i] - hi) / temperature);
    return detail::sample_proportional(mass, rng);
  };
}

/// Uniform-random selection (no pressure); the control arm in takeover
/// experiments.
[[nodiscard]] inline Selector uniform() {
  return [](std::span<const double> fitness, Rng& rng) {
    return rng.index(fitness.size());
  };
}

/// Stochastic universal sampling: draws `count` parents with a single spin of
/// an evenly-spaced multi-arm wheel, guaranteeing each individual's draw count
/// differs from its expectation by less than 1 (Baker 1987).
/// Caller-provided-buffer form (picks and mass scratch are reused).
inline void sus(std::span<const double> fitness, std::size_t count, Rng& rng,
                std::vector<std::size_t>& picks, std::vector<double>& mass) {
  detail::nonnegative_mass(fitness, mass);
  const double total = std::accumulate(mass.begin(), mass.end(), 0.0);
  const double step = total / static_cast<double>(count);
  double pointer = rng.uniform() * step;
  picks.clear();
  picks.reserve(count);
  double cumulative = mass[0];
  std::size_t i = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const double target = pointer + static_cast<double>(k) * step;
    while (cumulative < target && i + 1 < mass.size()) cumulative += mass[++i];
    picks.push_back(i);
  }
}

[[nodiscard]] inline std::vector<std::size_t> sus(
    std::span<const double> fitness, std::size_t count, Rng& rng) {
  std::vector<std::size_t> picks;
  std::vector<double> mass;
  sus(fitness, count, rng, picks, mass);
  return picks;
}

}  // namespace selection
}  // namespace pga
