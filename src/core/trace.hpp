#pragma once
// Run tracing: CSV export of per-generation statistics, so pgalib runs can
// be plotted/analyzed with external tools — the reporting layer every
// library in the survey's Table 1 shipped in some form.

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/statistics.hpp"

namespace pga {

/// Serializes a run history (RunResult::history) as CSV text with header
/// `generation,evaluations,best,mean,worst`.
[[nodiscard]] inline std::string history_to_csv(
    const std::vector<GenStats>& history) {
  std::ostringstream out;
  out << "generation,evaluations,best,mean,worst\n";
  out.precision(17);
  for (const auto& g : history) {
    out << g.generation << ',' << g.evaluations << ',' << g.best << ','
        << g.mean << ',' << g.worst << '\n';
  }
  return out.str();
}

/// Parses CSV produced by history_to_csv (round-trip support for analysis
/// pipelines and tests).  Throws on malformed input.
[[nodiscard]] inline std::vector<GenStats> history_from_csv(
    const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) ||
      line != "generation,evaluations,best,mean,worst")
    throw std::runtime_error("bad trace header");
  std::vector<GenStats> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    GenStats g;
    std::istringstream fields(line);
    char c1, c2, c3, c4;
    if (!(fields >> g.generation >> c1 >> g.evaluations >> c2 >> g.best >>
          c3 >> g.mean >> c4 >> g.worst) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',')
      throw std::runtime_error("bad trace row: " + line);
    // The last field must consume the rest of the line: "5junk" parses the 5
    // and leaves "junk" behind, which is a malformed row, not a value.
    // Trailing whitespace (e.g. the \r of a CRLF file) stays accepted.
    fields >> std::ws;
    if (fields.peek() != std::istringstream::traits_type::eof())
      throw std::runtime_error("trailing garbage in trace row: " + line);
    out.push_back(g);
  }
  return out;
}

/// Writes a history CSV file.
inline void save_trace(const std::vector<GenStats>& history,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << history_to_csv(history);
  if (!out) throw std::runtime_error("trace write failed: " + path);
}

/// Reads a history CSV file.
[[nodiscard]] inline std::vector<GenStats> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return history_from_csv(buffer.str());
}

/// Generic CSV table builder for experiment harnesses that want to persist
/// results next to their stdout tables.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  CsvTable& row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_.size())
      throw std::invalid_argument("CSV row width mismatch");
    rows_.push_back(cells);
    return *this;
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream out;
    out << join(columns_) << '\n';
    for (const auto& r : rows_) out << join(r) << '\n';
    return out.str();
  }

  void save(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open CSV file: " + path);
    out << to_string();
  }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  [[nodiscard]] static std::string join(const std::vector<std::string>& cells) {
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out.push_back(',');
      // RFC 4180: quote cells containing separators, quotes or newlines,
      // and double any embedded quote.
      if (cells[i].find_first_of(",\"\n\r") != std::string::npos) {
        out.push_back('"');
        for (char c : cells[i]) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += cells[i];
      }
    }
    return out;
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pga
