#pragma once
// Binary <-> real encodings.
//
// Early GAs (and many of the surveyed applications) encode real parameters
// as fixed-width binary fields, in plain or Gray code — Oyama's ARGA, for
// instance, ran both binary and real representations.  This header provides
// the codec: pack k-bit fields into a BitString, decode to box-bounded reals,
// and convert between standard binary and Gray code (Gray makes adjacent
// reals differ by one bit, removing Hamming cliffs).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"

namespace pga {

/// Standard binary -> Gray code.
[[nodiscard]] constexpr std::uint64_t binary_to_gray(std::uint64_t v) noexcept {
  return v ^ (v >> 1);
}

/// Gray code -> standard binary.
[[nodiscard]] constexpr std::uint64_t gray_to_binary(std::uint64_t g) noexcept {
  std::uint64_t v = g;
  for (std::uint64_t shift = 1; shift < 64; shift <<= 1) v ^= v >> shift;
  return v;
}

/// Fixed-point codec: `dims` real values, each `bits_per_dim` wide, over the
/// given box bounds.
class BinaryRealCodec {
 public:
  BinaryRealCodec(Bounds bounds, std::size_t bits_per_dim, bool gray = true)
      : bounds_(std::move(bounds)), bits_(bits_per_dim), gray_(gray) {
    if (bits_ == 0 || bits_ > 52)
      throw std::invalid_argument("bits_per_dim must be in [1, 52]");
  }

  [[nodiscard]] std::size_t genome_length() const noexcept {
    return bounds_.size() * bits_;
  }
  [[nodiscard]] std::size_t dimensions() const noexcept { return bounds_.size(); }
  [[nodiscard]] bool uses_gray() const noexcept { return gray_; }

  /// Decodes a bitstring of genome_length() bits into a real vector.
  [[nodiscard]] RealVector decode(const BitString& genome) const {
    if (genome.size() != genome_length())
      throw std::invalid_argument("genome length mismatch");
    RealVector out(bounds_.size());
    const double denom =
        static_cast<double>((std::uint64_t{1} << bits_) - 1);
    for (std::size_t d = 0; d < bounds_.size(); ++d) {
      std::uint64_t raw = genome.decode_uint(d * bits_, bits_);
      if (gray_) raw = gray_to_binary(raw);
      const double t = denom > 0 ? static_cast<double>(raw) / denom : 0.0;
      out[d] = bounds_.lower[d] + t * bounds_.span(d);
    }
    return out;
  }

  /// Encodes a real vector to the nearest representable bitstring.
  [[nodiscard]] BitString encode(const RealVector& values) const {
    if (values.size() != bounds_.size())
      throw std::invalid_argument("value dimension mismatch");
    BitString genome(genome_length());
    const auto max_raw = (std::uint64_t{1} << bits_) - 1;
    for (std::size_t d = 0; d < bounds_.size(); ++d) {
      const double span = bounds_.span(d);
      double t = span > 0.0 ? (values[d] - bounds_.lower[d]) / span : 0.0;
      t = std::min(std::max(t, 0.0), 1.0);
      auto raw = static_cast<std::uint64_t>(t * static_cast<double>(max_raw) + 0.5);
      if (gray_) raw = binary_to_gray(raw);
      for (std::size_t b = 0; b < bits_; ++b)
        genome[d * bits_ + b] =
            static_cast<std::uint8_t>((raw >> (bits_ - 1 - b)) & 1u);
    }
    return genome;
  }

  [[nodiscard]] const Bounds& bounds() const noexcept { return bounds_; }

 private:
  Bounds bounds_;
  std::size_t bits_;
  bool gray_;
};

/// Problem adapter: present a real-valued problem to a binary-coded GA
/// through a codec (the classic binary-GA-on-continuous-function setup).
template <class RealProblem>
class BinaryEncodedProblem final : public Problem<BitString> {
 public:
  BinaryEncodedProblem(const RealProblem& inner, BinaryRealCodec codec)
      : inner_(inner), codec_(std::move(codec)) {}

  [[nodiscard]] double fitness(const BitString& genome) const override {
    return inner_.fitness(codec_.decode(genome));
  }
  [[nodiscard]] double objective(const BitString& genome) const override {
    return inner_.objective(codec_.decode(genome));
  }
  [[nodiscard]] std::optional<double> optimum_fitness() const override {
    return inner_.optimum_fitness();
  }
  [[nodiscard]] std::string name() const override {
    return inner_.name() + (codec_.uses_gray() ? "/gray" : "/binary");
  }
  [[nodiscard]] const BinaryRealCodec& codec() const noexcept { return codec_; }

 private:
  const RealProblem& inner_;
  BinaryRealCodec codec_;
};

}  // namespace pga
