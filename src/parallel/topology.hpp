#pragma once
// Inter-deme communication topologies.
//
// The survey (§3.2) lists the classic families: uni/bi-directional rings,
// 2-D grids/meshes, toruses, hypercubes, stars, fully-connected graphs and
// pipelines.  A Topology is a directed graph over deme indices; migration
// sends emigrants along out-edges.  Cantú-Paz's results on topology choice
// (denser graphs converge faster at higher communication cost) are
// experiment E5.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace pga {

/// Directed neighbor structure over `n` demes.
class Topology {
 public:
  Topology(std::string name, std::vector<std::vector<std::size_t>> out_edges)
      : name_(std::move(name)), out_(std::move(out_edges)) {}

  [[nodiscard]] std::size_t num_demes() const noexcept { return out_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& neighbors_out(
      std::size_t deme) const {
    return out_[deme];
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total directed edge count (communication volume per migration epoch).
  [[nodiscard]] std::size_t num_edges() const noexcept {
    std::size_t e = 0;
    for (const auto& v : out_) e += v.size();
    return e;
  }

  /// True iff every deme can reach every other (BFS from each source).
  [[nodiscard]] bool is_strongly_connected() const {
    const std::size_t n = num_demes();
    if (n <= 1) return true;
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<std::uint8_t> seen(n, 0);
      std::vector<std::size_t> stack{s};
      seen[s] = 1;
      std::size_t visited = 1;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        for (std::size_t v : out_[u]) {
          if (!seen[v]) {
            seen[v] = 1;
            ++visited;
            stack.push_back(v);
          }
        }
      }
      if (visited != n) return false;
    }
    return true;
  }

  // --- Factories -----------------------------------------------------------

  /// No edges: the isolated-demes control arm (Cantú-Paz: "impractical").
  [[nodiscard]] static Topology isolated(std::size_t n) {
    return Topology("isolated", std::vector<std::vector<std::size_t>>(n));
  }

  /// Unidirectional ring 0 -> 1 -> ... -> n-1 -> 0.
  [[nodiscard]] static Topology ring(std::size_t n) {
    std::vector<std::vector<std::size_t>> out(n);
    if (n > 1)
      for (std::size_t i = 0; i < n; ++i) out[i] = {(i + 1) % n};
    return Topology("ring", std::move(out));
  }

  /// Bidirectional ring.
  [[nodiscard]] static Topology bidirectional_ring(std::size_t n) {
    std::vector<std::vector<std::size_t>> out(n);
    if (n > 2) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = {(i + 1) % n, (i + n - 1) % n};
    } else if (n == 2) {
      out[0] = {1};
      out[1] = {0};
    }
    return Topology("bi-ring", std::move(out));
  }

  /// Complete graph (fully connected).
  [[nodiscard]] static Topology complete(std::size_t n) {
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) out[i].push_back(j);
    return Topology("complete", std::move(out));
  }

  /// Star: hub deme 0 exchanges with every leaf (hierarchical master deme).
  [[nodiscard]] static Topology star(std::size_t n) {
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t i = 1; i < n; ++i) {
      out[0].push_back(i);
      out[i].push_back(0);
    }
    return Topology("star", std::move(out));
  }

  /// 2-D grid (non-wrapping mesh) of rows x cols demes, 4-neighborhood.
  [[nodiscard]] static Topology grid(std::size_t rows, std::size_t cols) {
    const std::size_t n = rows * cols;
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t i = r * cols + c;
        if (r > 0) out[i].push_back(i - cols);
        if (r + 1 < rows) out[i].push_back(i + cols);
        if (c > 0) out[i].push_back(i - 1);
        if (c + 1 < cols) out[i].push_back(i + 1);
      }
    return Topology("grid", std::move(out));
  }

  /// 2-D torus (wrapping grid), 4-neighborhood.
  [[nodiscard]] static Topology torus(std::size_t rows, std::size_t cols) {
    const std::size_t n = rows * cols;
    std::vector<std::vector<std::size_t>> out(n);
    if (n == 1) return Topology("torus", std::move(out));
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t i = r * cols + c;
        auto add = [&](std::size_t rr, std::size_t cc) {
          const std::size_t j = (rr % rows) * cols + (cc % cols);
          if (j != i) out[i].push_back(j);
        };
        add(r + rows - 1, c);
        add(r + 1, c);
        add(r, c + cols - 1);
        add(r, c + 1);
      }
    return Topology("torus", std::move(out));
  }

  /// Hypercube over n = 2^d demes; neighbors differ in one address bit.
  [[nodiscard]] static Topology hypercube(std::size_t n) {
    if (n == 0 || (n & (n - 1)) != 0)
      throw std::invalid_argument("hypercube size must be a power of two");
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t bit = 1; bit < n; bit <<= 1) out[i].push_back(i ^ bit);
    return Topology("hypercube", std::move(out));
  }

  /// Each deme gets k distinct random out-neighbors (Erdos-Renyi-ish).
  [[nodiscard]] static Topology random_k(std::size_t n, std::size_t k,
                                         Rng& rng) {
    if (n > 1 && k >= n) throw std::invalid_argument("random_k needs k < n");
    std::vector<std::vector<std::size_t>> out(n);
    for (std::size_t i = 0; i < n && n > 1; ++i) {
      while (out[i].size() < k) {
        const std::size_t j = rng.index(n);
        if (j == i) continue;
        bool dup = false;
        for (std::size_t seen : out[i]) dup |= (seen == j);
        if (!dup) out[i].push_back(j);
      }
    }
    return Topology("random-" + std::to_string(k), std::move(out));
  }

 private:
  std::string name_;
  std::vector<std::vector<std::size_t>> out_;
};

}  // namespace pga
