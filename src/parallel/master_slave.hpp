#pragma once
// Global (master-slave) parallel GA.
//
// The master runs the full evolutionary loop — selection, crossover,
// mutation, replacement — and farms fitness evaluations out to slave ranks.
// This is Grefenstette's (1981) global PGA and the model Cantú-Paz analyzes
// in depth: with n individuals, evaluation time Tf and per-message cost Tc,
// the optimal slave count is s* = sqrt(n Tf / Tc) (experiment E1).
//
// Three dispatch modes:
//   * kSynchronous  — deal all chunks round-robin, then collect everything
//     (one barrier per generation; hurts with heterogeneous slaves).
//   * kAsynchronous — keep a bounded number of chunks in flight per slave and
//     refill on completion (self-balancing; Gagné's "adaptivity").
//   * fault tolerance (any mode) — when `timeout_s` is finite, a silent slave
//     is declared dead and its outstanding chunks are reassigned to the
//     survivors (Gagné's "robustness", experiment E9).  With every slave
//     dead, the master degrades to evaluating locally ("transparency").
//
// Run rank 0 as master, ranks >= 1 as slaves via run_master_slave_rank().
// With a world of size 1 the master simply evaluates locally, which provides
// the sequential baseline at identical code path and cost accounting.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/termination.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"

namespace pga {

enum class DispatchMode { kSynchronous, kAsynchronous };

template <class G>
struct MasterSlaveConfig {
  std::size_t pop_size = 64;
  StopCondition stop{};
  Operators<G> ops{};
  std::size_t elitism = 1;
  /// Individuals per work message; larger chunks amortize latency.
  std::size_t chunk_size = 1;
  DispatchMode mode = DispatchMode::kAsynchronous;
  /// Virtual CPU seconds per fitness evaluation, declared by slaves (and by
  /// the master in local-fallback mode).
  double eval_cost_s = 0.0;
  /// Declared master-side CPU cost per offspring for variation (usually
  /// negligible next to Tf; part of the serial fraction in E1).
  double variation_cost_s = 0.0;
  /// Finite => fault tolerance on: silence longer than this declares a slave
  /// dead.  Infinite => plain blocking collection.
  double timeout_s = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 1;
  std::function<G(Rng&)> make_genome;
  /// Optional event sink: the master emits per-generation stats,
  /// dispatch/result/re-dispatch markers and failure-detection events; the
  /// slaves emit per-chunk evaluation spans.  Null (default) = one branch.
  obs::Tracer trace{};
};

template <class G>
struct MasterResult {
  Individual<G> best{};
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  bool reached_target = false;
  std::size_t evals_to_target = 0;
  /// Slaves declared dead by the failure detector over the whole run.
  std::size_t slaves_lost = 0;
  /// Evaluations the master had to perform locally (fallback).
  std::size_t local_evaluations = 0;
};

namespace ms_detail {
inline constexpr int kWorkTag = 10;
inline constexpr int kResultTag = 11;
inline constexpr int kStopTag = 12;

template <class G>
[[nodiscard]] std::vector<std::uint8_t> pack_work(
    const std::vector<std::pair<std::uint32_t, const G*>>& items) {
  comm::ByteWriter w;
  w.write<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
  for (const auto& [id, genome] : items) {
    w.write<std::uint32_t>(id);
    comm::serialize(w, *genome);
  }
  return std::move(w).take();
}
}  // namespace ms_detail

/// Slave loop: evaluate work chunks until told to stop.  Thread-compatible
/// with any Problem (evaluations are const).
///
/// Chunks are evaluated as *batches*: the whole message is deserialized into
/// persistent genome slots (capacity survives across chunks), the declared
/// cost is charged once for the chunk, and pga::evaluate_batch routes
/// through the problem's SoA kernel when it has one — so the master-slave
/// evaluation time Tf shrinks by the same kernel factor experiment K1
/// measures, moving the optimal slave count s* = sqrt(n Tf / Tc) down.
template <class G>
void run_slave(comm::Transport& t, const Problem<G>& problem,
               const MasterSlaveConfig<G>& cfg) {
  std::vector<G> genomes;
  std::vector<std::uint32_t> ids;
  std::vector<double> fit;
  SoaSlab<G> slab;
  for (;;) {
    auto msg = t.recv(0, comm::Transport::kAnyTag);
    if (!msg || msg->tag == ms_detail::kStopTag) return;
    comm::ByteReader r(msg->payload);
    const auto count = r.read<std::uint32_t>();
    cfg.trace.span_begin(t.rank(), t.now(), "eval_chunk");
    cfg.trace.evaluation_batch(t.rank(), t.now(), count, "eval_chunk");
    genomes.resize(count);
    ids.resize(count);
    fit.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ids[i] = r.read<std::uint32_t>();
      comm::deserialize(r, genomes[i]);
    }
    t.compute(cfg.eval_cost_s * static_cast<double>(count));
    evaluate_batch(problem, std::span<const G>(genomes.data(), count), slab,
                   std::span<double>(fit.data(), count));
    comm::ByteWriter reply;
    reply.write<std::uint32_t>(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      reply.write<std::uint32_t>(ids[i]);
      reply.write<double>(fit[i]);
    }
    cfg.trace.span_end(t.rank(), t.now(), "eval_chunk");
    t.send(0, ms_detail::kResultTag, std::move(reply).take());
  }
}

/// Master loop: generational GA with farmed-out evaluation.
template <class G>
MasterResult<G> run_master(comm::Transport& t, const Problem<G>& problem,
                           const MasterSlaveConfig<G>& cfg) {
  Rng rng(cfg.seed);
  MasterResult<G> result;

  const int world = t.world_size();
  std::vector<std::uint8_t> slave_alive(static_cast<std::size_t>(world), 1);
  slave_alive[0] = 0;  // the master is not a slave
  auto live_slaves = [&] {
    std::size_t n = 0;
    for (int r = 1; r < world; ++r) n += slave_alive[static_cast<std::size_t>(r)];
    return n;
  };

  // ---- Distributed evaluation of a batch of genomes -----------------------
  // Returns fitness per genome, reassigning chunks away from dead slaves.
  auto evaluate_batch = [&](std::vector<Individual<G>>& batch) {
    std::vector<std::uint32_t> todo;  // indices still needing evaluation
    for (std::uint32_t i = 0; i < batch.size(); ++i)
      if (!batch[static_cast<std::size_t>(i)].evaluated) todo.push_back(i);
    if (todo.empty()) return;
    result.evaluations += todo.size();
    cfg.trace.evaluation_batch(t.rank(), t.now(), todo.size(), "eval_batch");

    if (live_slaves() == 0) {
      // Transparency: degrade to local evaluation.
      for (auto i : todo) {
        auto& ind = batch[static_cast<std::size_t>(i)];
        t.compute(cfg.eval_cost_s);
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
        ++result.local_evaluations;
      }
      return;
    }

    // Chunk the work queue.
    std::deque<std::vector<std::uint32_t>> chunks;
    for (std::size_t i = 0; i < todo.size(); i += cfg.chunk_size) {
      chunks.emplace_back(
          todo.begin() + static_cast<std::ptrdiff_t>(i),
          todo.begin() +
              static_cast<std::ptrdiff_t>(std::min(i + cfg.chunk_size, todo.size())));
    }

    // Outstanding chunks per slave (for reassignment on death).
    std::vector<std::vector<std::vector<std::uint32_t>>> outstanding(
        static_cast<std::size_t>(world));
    std::size_t pending_items = todo.size();

    auto send_chunk = [&](int slave, std::vector<std::uint32_t> chunk,
                          const char* label = "dispatch") {
      std::vector<std::pair<std::uint32_t, const G*>> items;
      items.reserve(chunk.size());
      for (auto i : chunk)
        items.emplace_back(i, &batch[static_cast<std::size_t>(i)].genome);
      const double t0 = t.now();
      const std::uint64_t id =
          t.send(slave, ms_detail::kWorkTag, ms_detail::pack_work<G>(items));
      cfg.trace.mark(t.rank(), t0, label, slave, chunk.size(), id);
      outstanding[static_cast<std::size_t>(slave)].push_back(std::move(chunk));
    };

    // Initial deal.
    {
      // In synchronous mode everything is dealt upfront; in asynchronous mode
      // at most `kInFlight` chunks per slave are outstanding.
      constexpr std::size_t kInFlight = 2;
      int next_slave = 1;
      auto next_live = [&](int from) {
        int r = from;
        for (int step = 0; step < world; ++step) {
          if (r >= world) r = 1;
          if (slave_alive[static_cast<std::size_t>(r)]) return r;
          ++r;
        }
        return 0;  // unreachable while live_slaves() > 0
      };
      while (!chunks.empty()) {
        const int slave = next_live(next_slave);
        next_slave = slave + 1;
        if (cfg.mode == DispatchMode::kAsynchronous &&
            outstanding[static_cast<std::size_t>(slave)].size() >= kInFlight) {
          // Every live slave saturated?
          bool all_full = true;
          for (int r = 1; r < world; ++r)
            if (slave_alive[static_cast<std::size_t>(r)] &&
                outstanding[static_cast<std::size_t>(r)].size() < kInFlight)
              all_full = false;
          if (all_full) break;
          continue;
        }
        send_chunk(slave, std::move(chunks.front()));
        chunks.pop_front();
      }
    }

    // Collect, refilling (async) and reassigning on failure.
    while (pending_items > 0) {
      std::optional<comm::Message> msg;
      if (std::isfinite(cfg.timeout_s))
        msg = t.recv_timeout(cfg.timeout_s, comm::Transport::kAnySource,
                             ms_detail::kResultTag);
      else
        msg = t.recv(comm::Transport::kAnySource, ms_detail::kResultTag);

      if (!msg) {
        // Silence: every slave with outstanding work is presumed dead;
        // reclaim their chunks (robustness).
        bool reclaimed = false;
        for (int r = 1; r < world; ++r) {
          auto& out = outstanding[static_cast<std::size_t>(r)];
          if (!slave_alive[static_cast<std::size_t>(r)] || out.empty()) continue;
          slave_alive[static_cast<std::size_t>(r)] = 0;
          ++result.slaves_lost;
          reclaimed = true;
          cfg.trace.mark(t.rank(), t.now(), "slave_declared_dead", r,
                         out.size());
          for (auto& chunk : out) chunks.push_back(std::move(chunk));
          out.clear();
        }
        if (!reclaimed && !std::isfinite(cfg.timeout_s)) {
          // Blocking transport shut down with work pending: evaluate locally.
          slave_alive.assign(slave_alive.size(), 0);
        }
        // Redistribute reclaimed chunks (or fall back to local evaluation).
        if (live_slaves() == 0) {
          while (!chunks.empty()) {
            for (auto i : chunks.front()) {
              auto& ind = batch[static_cast<std::size_t>(i)];
              if (ind.evaluated) continue;
              t.compute(cfg.eval_cost_s);
              ind.fitness = problem.fitness(ind.genome);
              ind.evaluated = true;
              ++result.local_evaluations;
              --pending_items;
            }
            chunks.pop_front();
          }
          break;
        }
        int slave = 1;
        while (!chunks.empty()) {
          while (!slave_alive[static_cast<std::size_t>(slave)]) slave = slave % (world - 1) + 1;
          send_chunk(slave, std::move(chunks.front()), "re_dispatch");
          chunks.pop_front();
          slave = slave % (world - 1) + 1;
        }
        continue;
      }

      // A result chunk: record fitness values.
      const int slave = msg->source;
      comm::ByteReader r(msg->payload);
      const auto count = r.read<std::uint32_t>();
      cfg.trace.mark(t.rank(), t.now(), "result", slave, count, msg->msg_id);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto id = r.read<std::uint32_t>();
        const double fitness = r.read<double>();
        auto& ind = batch[static_cast<std::size_t>(id)];
        if (!ind.evaluated) {
          ind.fitness = fitness;
          ind.evaluated = true;
          --pending_items;
        }
      }
      // Pop one outstanding chunk for this slave (FIFO completes in order
      // because the slave processes sequentially).
      auto& out = outstanding[static_cast<std::size_t>(slave)];
      if (!out.empty()) out.erase(out.begin());
      // Refill in async mode.
      if (!chunks.empty() && slave_alive[static_cast<std::size_t>(slave)]) {
        send_chunk(slave, std::move(chunks.front()));
        chunks.pop_front();
      }
    }
  };

  // ---- Generational loop ---------------------------------------------------
  std::vector<Individual<G>> members;
  members.reserve(cfg.pop_size);
  for (std::size_t i = 0; i < cfg.pop_size; ++i)
    members.emplace_back(cfg.make_genome(rng));
  evaluate_batch(members);
  Population<G> pop(std::move(members));

  obs::GenerationProbe<G> probe(cfg.trace, t.rank());
  std::size_t probed_evals = 0;
  auto snapshot_stats = [&] {
    if (!cfg.trace) return;
    const auto [worst_i, best_i] = pop.minmax_indices();
    cfg.trace.gen_stats(t.rank(), t.now(), result.generations,
                        result.evaluations, pop[best_i].fitness,
                        pop.mean_fitness(), pop[worst_i].fitness);
    probe.observe(pop, t.now(), result.generations,
                  result.evaluations - probed_evals);
    probed_evals = result.evaluations;
  };
  snapshot_stats();

  auto update_target = [&] {
    if (!result.reached_target && cfg.stop.target_reached(pop.best_fitness())) {
      result.reached_target = true;
      result.evals_to_target = result.evaluations;
    }
  };
  update_target();

  // Generation workspace: offspring slots, staging vector and the fitness
  // snapshot are reused every generation (see GenWorkspace).
  GenWorkspace<G> ws;
  while (!result.reached_target &&
         result.generations < cfg.stop.max_generations &&
         result.evaluations < cfg.stop.max_evaluations) {
    // Variation on the master (the serial fraction).
    pop.fitness_values_into(ws.fitness);
    const std::size_t offspring_count =
        cfg.pop_size > cfg.elitism ? cfg.pop_size - cfg.elitism : 1;
    ws.offspring.resize(offspring_count);
    std::size_t made = 0;
    while (made < offspring_count) {
      const std::size_t i = cfg.ops.select(ws.fitness, rng);
      const std::size_t j = cfg.ops.select(ws.fitness, rng);
      Individual<G>& s1 = ws.offspring[made];
      Individual<G>& s2 =
          (made + 1 < offspring_count) ? ws.offspring[made + 1] : ws.spare;
      s1.genome = pop[i].genome;
      s2.genome = pop[j].genome;
      s1.evaluated = s2.evaluated = false;
      if (rng.bernoulli(cfg.ops.crossover_rate)) {
        if (cfg.ops.cross_in_place) {
          cfg.ops.cross_in_place(s1.genome, s2.genome, rng);
        } else {
          auto [a, b] = cfg.ops.cross(pop[i].genome, pop[j].genome, rng);
          s1.genome = std::move(a);
          s2.genome = std::move(b);
        }
      }
      cfg.ops.mutate(s1.genome, rng);
      ++made;
      if (made < offspring_count) {
        cfg.ops.mutate(s2.genome, rng);
        ++made;
      }
    }
    t.compute(cfg.variation_cost_s * static_cast<double>(offspring_count));

    evaluate_batch(ws.offspring);

    pop.sort_descending();
    const std::size_t elite_keep = std::min(cfg.elitism, pop.size());
    ws.next.resize(elite_keep + offspring_count);
    for (std::size_t e = 0; e < elite_keep; ++e) ws.next[e] = pop[e];
    for (std::size_t r = 0; r < offspring_count; ++r)
      std::swap(ws.next[elite_keep + r], ws.offspring[r]);
    pop.members().swap(ws.next);

    ++result.generations;
    snapshot_stats();
    update_target();
  }

  // Release the slaves.
  for (int r = 1; r < world; ++r)
    if (slave_alive[static_cast<std::size_t>(r)])
      t.send(r, ms_detail::kStopTag, {});

  if (!result.reached_target) result.evals_to_target = result.evaluations;
  result.best = pop.best();
  return result;
}

/// Dispatch helper: run the right role for this rank.  Returns the master's
/// result on rank 0, nullopt on slave ranks.
template <class G>
std::optional<MasterResult<G>> run_master_slave_rank(
    comm::Transport& t, const Problem<G>& problem,
    const MasterSlaveConfig<G>& cfg) {
  if (t.rank() == 0) return run_master(t, problem, cfg);
  run_slave(t, problem, cfg);
  return std::nullopt;
}

}  // namespace pga
