#pragma once
// Sequential (in-process) island model.
//
// The coarse-grained PGA: several demes evolve independently and exchange
// individuals along a topology at fixed intervals.  This engine steps the
// demes round-robin in one thread — the right tool for *policy* experiments
// (migration frequency, migrant selection, topology, deme count: E3, E5,
// E14), where search behaviour matters and wall-clock does not.  The
// distributed version in distributed_island.hpp runs the same policy over a
// Transport for timing experiments.
//
// Demes may run different reproductive loop types (generational,
// steady-state, cellular), the heterogeneous-islands setting of Alba & Troya
// (2000, 2002).

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "exec/parallelism.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"
#include "parallel/migration.hpp"
#include "parallel/topology.hpp"

namespace pga {

/// Migration timing within an epoch.  Synchronous collects every deme's
/// emigrants against the same epoch snapshot before anyone integrates;
/// asynchronous integrates deme-by-deme so information can hop several demes
/// within one epoch (the sequential analogue of non-blocking migration).
enum class MigrationSync { kSynchronous, kAsynchronous };

template <class G>
struct IslandResult {
  Individual<G> best{};
  std::size_t epochs = 0;            ///< deme generations executed
  std::size_t evaluations = 0;       ///< summed over demes
  bool reached_target = false;
  std::size_t evals_to_target = 0;   ///< total evals when target first hit
  std::vector<double> deme_best;     ///< final best fitness per deme
  std::size_t migration_epochs = 0;  ///< epochs in which migration occurred
};

/// Decides, after each epoch, whether a migration exchange happens now.
/// Receives the epoch number and the current demes; the default policy is
/// the classic fixed interval, but adaptive controllers (e.g. migrate when
/// a deme's diversity collapses — the survey's "working model theories"
/// perspective) plug in here.
template <class G>
using MigrationTrigger =
    std::function<bool(std::size_t epoch, const std::vector<Population<G>>&)>;

namespace migration_trigger {

/// Classic fixed-interval trigger (interval 0 = never).
template <class G>
[[nodiscard]] MigrationTrigger<G> every(std::size_t interval) {
  return [interval](std::size_t epoch, const std::vector<Population<G>>&) {
    return interval != 0 && epoch % interval == 0;
  };
}

/// Adaptive trigger: migrate when any deme's diversity (as measured by
/// `diversity_of`) drops below `threshold`, with a refractory period of
/// `cooldown` epochs so a converged deme doesn't trigger every epoch.
template <class G, class DiversityFn>
[[nodiscard]] MigrationTrigger<G> on_low_diversity(DiversityFn diversity_of,
                                                   double threshold,
                                                   std::size_t cooldown = 4) {
  auto last_fired = std::make_shared<std::size_t>(0);
  return [diversity_of = std::move(diversity_of), threshold, cooldown,
          last_fired](std::size_t epoch,
                      const std::vector<Population<G>>& demes) {
    if (epoch < *last_fired + cooldown) return false;
    for (const auto& deme : demes) {
      if (diversity_of(deme) < threshold) {
        *last_fired = epoch;
        return true;
      }
    }
    return false;
  };
}

}  // namespace migration_trigger

template <class G>
class IslandModel {
 public:
  /// Takes ownership of one evolution scheme per deme; `topology.num_demes()`
  /// must match.  Each deme gets an independent RNG stream split from `seed`.
  IslandModel(Topology topology, MigrationPolicy policy,
              std::vector<std::unique_ptr<EvolutionScheme<G>>> schemes,
              MigrationSync sync = MigrationSync::kSynchronous)
      : topology_(std::move(topology)),
        policy_(policy),
        schemes_(std::move(schemes)),
        sync_(sync) {
    if (schemes_.size() != topology_.num_demes())
      throw std::invalid_argument("one scheme per deme required");
    if (schemes_.empty())
      throw std::invalid_argument("island model needs at least one deme");
  }

  [[nodiscard]] std::size_t num_demes() const noexcept {
    return schemes_.size();
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  /// Replaces the default fixed-interval migration timing with a custom
  /// trigger (see migration_trigger::on_low_diversity).  The policy's
  /// count/selection/replacement still govern *what* migrates.
  void set_migration_trigger(MigrationTrigger<G> trigger) {
    trigger_ = std::move(trigger);
  }

  /// Attaches an event sink.  The engine is sequential, so the "virtual
  /// time" stamped on events is the epoch index and each deme gets its own
  /// rank lane: per-epoch gen_stats per deme plus one migration event per
  /// topology edge per migration epoch.
  void set_tracer(obs::Tracer trace) noexcept { trace_ = trace; }

  /// Runs until `stop` fires (generations are per-deme; evaluations are
  /// summed across demes).  `populations` holds one deme population per
  /// island and is evolved in place.
  IslandResult<G> run(std::vector<Population<G>>& populations,
                      const Problem<G>& problem, const StopCondition& stop,
                      Rng& rng) {
    if (populations.size() != num_demes())
      throw std::invalid_argument("one population per deme required");

    // Independent, reproducible stream per deme.
    std::vector<Rng> deme_rngs;
    deme_rngs.reserve(num_demes());
    for (std::size_t d = 0; d < num_demes(); ++d)
      deme_rngs.push_back(rng.split(d));

    IslandResult<G> result;
    // Per-run migration-packet ids (1-based; reset each run so identical
    // configurations produce byte-identical traces).
    std::uint64_t msg_seq = 0;
    for (auto& pop : populations) result.evaluations += pop.evaluate_all(problem);

    // One search-dynamics probe per deme lane (null-tracer cost: one branch
    // per deme per epoch).  Probes persist across epochs so each deme's
    // selection intensity is measured against its own previous generation.
    std::vector<obs::GenerationProbe<G>> probes;
    probes.reserve(num_demes());
    for (std::size_t d = 0; d < num_demes(); ++d)
      probes.emplace_back(trace_, static_cast<int>(d));

    auto check_target = [&]() {
      if (result.reached_target) return;
      for (const auto& pop : populations) {
        if (stop.target_reached(pop.best_fitness())) {
          result.reached_target = true;
          result.evals_to_target = result.evaluations;
          return;
        }
      }
    };
    check_target();

    while (!result.reached_target && result.epochs < stop.max_generations &&
           result.evaluations < stop.max_evaluations) {
      // One generation per deme.
      std::vector<std::size_t> deme_evals(num_demes());
      for (std::size_t d = 0; d < num_demes(); ++d) {
        deme_evals[d] = schemes_[d]->step(populations[d], problem, deme_rngs[d]);
        result.evaluations += deme_evals[d];
      }
      ++result.epochs;

      if (trace_) {
        const double now = static_cast<double>(result.epochs);
        for (std::size_t d = 0; d < num_demes(); ++d) {
          const auto& pop = populations[d];
          // Each deme's generation fills the whole epoch slot [now-1, now]:
          // the engine is sequential, so lanes show logical concurrency.
          trace_.span_begin(static_cast<int>(d), now - 1.0, "compute");
          trace_.evaluation_batch(static_cast<int>(d), now, deme_evals[d]);
          trace_.span_end(static_cast<int>(d), now, "compute");
          const auto [worst_i, best_i] = pop.minmax_indices();
          trace_.gen_stats(static_cast<int>(d), now, result.epochs,
                           result.evaluations, pop[best_i].fitness,
                           pop.mean_fitness(), pop[worst_i].fitness);
          probes[d].observe(pop, now, result.epochs, deme_evals[d]);
        }
      }

      // Migration epoch.
      const bool migrate_now =
          trigger_ ? trigger_(result.epochs, populations)
                   : (policy_.enabled() &&
                      result.epochs % policy_.interval == 0);
      if (migrate_now) {
        migrate_at(populations, deme_rngs,
                   static_cast<double>(result.epochs), msg_seq);
        ++result.migration_epochs;
      }

      check_target();
    }

    // Aggregate the final answer.
    result.deme_best.reserve(num_demes());
    std::size_t best_deme = 0;
    for (std::size_t d = 0; d < num_demes(); ++d) {
      result.deme_best.push_back(populations[d].best_fitness());
      if (populations[d].best_fitness() > populations[best_deme].best_fitness())
        best_deme = d;
    }
    result.best = populations[best_deme].best();
    if (!result.reached_target) result.evals_to_target = result.evaluations;
    return result;
  }

  /// Wall-clock overload: same algorithm, same trajectory, real cores.
  /// Each epoch steps all demes through `par` (one task per deme, grain 1,
  /// work-stealing balances uneven demes); schemes receive the executor via
  /// `step_exec` so offspring evaluation fans out further inside each deme
  /// task.  Determinism: deme RNG streams are keyed by deme index
  /// (`rng.split(d)`, exactly as the sequential overload) and each stream is
  /// only ever consumed by the single task stepping that deme, so the run is
  /// bit-identical to `run(populations, problem, stop, rng)` at any thread
  /// count — asserted in test_exec.cpp.
  ///
  /// Tracing conventions differ from the sequential overload: timestamps
  /// are wall seconds from `par`'s clock; `compute`/`eval_chunk` events ride
  /// on *pool-lane* ranks (emitted inside evaluate_all, tagged via
  /// `par.mark_lanes()`), while `gen_stats`/`search_stats`/`migration` stay
  /// on *deme* ranks, emitted post-barrier on the calling thread so their
  /// order is deterministic.
  IslandResult<G> run(std::vector<Population<G>>& populations,
                      const Problem<G>& problem, const StopCondition& stop,
                      Rng& rng, const exec::Parallelism& par) {
    if (!par.parallel() && !par.tracer())
      return run(populations, problem, stop, rng);
    if (populations.size() != num_demes())
      throw std::invalid_argument("one population per deme required");

    std::vector<Rng> deme_rngs;
    deme_rngs.reserve(num_demes());
    for (std::size_t d = 0; d < num_demes(); ++d)
      deme_rngs.push_back(rng.split(d));

    IslandResult<G> result;
    std::uint64_t msg_seq = 0;
    par.mark_lanes();
    for (auto& pop : populations)
      result.evaluations += pop.evaluate_all(problem, par);

    std::vector<obs::GenerationProbe<G>> probes;
    probes.reserve(num_demes());
    for (std::size_t d = 0; d < num_demes(); ++d)
      probes.emplace_back(trace_, static_cast<int>(d));

    auto check_target = [&]() {
      if (result.reached_target) return;
      for (const auto& pop : populations) {
        if (stop.target_reached(pop.best_fitness())) {
          result.reached_target = true;
          result.evals_to_target = result.evaluations;
          return;
        }
      }
    };
    check_target();

    while (!result.reached_target && result.epochs < stop.max_generations &&
           result.evaluations < stop.max_evaluations) {
      // One generation per deme, demes in flight concurrently.  deme_evals
      // slots are disjoint per task, so no synchronization is needed beyond
      // the for_range barrier.
      std::vector<std::size_t> deme_evals(num_demes());
      par.for_range(0, num_demes(), 1,
                    [&](std::size_t lo, std::size_t hi, int /*lane*/) {
                      for (std::size_t d = lo; d < hi; ++d)
                        deme_evals[d] = schemes_[d]->step_exec(
                            populations[d], problem, deme_rngs[d], par);
                    });
      for (std::size_t d = 0; d < num_demes(); ++d)
        result.evaluations += deme_evals[d];
      ++result.epochs;

      if (trace_) {
        const double now = par.now();
        for (std::size_t d = 0; d < num_demes(); ++d) {
          const auto& pop = populations[d];
          const auto [worst_i, best_i] = pop.minmax_indices();
          trace_.gen_stats(static_cast<int>(d), now, result.epochs,
                           result.evaluations, pop[best_i].fitness,
                           pop.mean_fitness(), pop[worst_i].fitness);
          probes[d].observe(pop, now, result.epochs, deme_evals[d]);
        }
      }

      const bool migrate_now =
          trigger_ ? trigger_(result.epochs, populations)
                   : (policy_.enabled() &&
                      result.epochs % policy_.interval == 0);
      if (migrate_now) {
        migrate_at(populations, deme_rngs, par.now(), msg_seq);
        ++result.migration_epochs;
      }

      check_target();
    }

    result.deme_best.reserve(num_demes());
    std::size_t best_deme = 0;
    for (std::size_t d = 0; d < num_demes(); ++d) {
      result.deme_best.push_back(populations[d].best_fitness());
      if (populations[d].best_fitness() > populations[best_deme].best_fitness())
        best_deme = d;
    }
    result.best = populations[best_deme].best();
    if (!result.reached_target) result.evals_to_target = result.evaluations;
    return result;
  }

  /// Convenience: builds `num_demes` random populations of `deme_size`.
  template <class MakeGenome>
  [[nodiscard]] std::vector<Population<G>> make_populations(
      std::size_t deme_size, MakeGenome&& make, Rng& rng) const {
    std::vector<Population<G>> pops;
    pops.reserve(num_demes());
    for (std::size_t d = 0; d < num_demes(); ++d) {
      Rng stream = rng.split(1000 + d);
      pops.push_back(Population<G>::random(deme_size, make, stream));
    }
    return pops;
  }

 private:
  /// Migration with an explicit event timestamp (epoch index for the
  /// sequential engine, wall seconds for the executor-backed one).  Each
  /// migrant packet draws the next id from `msg_seq` (shared per run) and
  /// carries it on both the kMigration event and the destination deme's
  /// "migrants_integrated" mark, so in-process exchanges correlate exactly
  /// like transport-level ones.
  void migrate_at(std::vector<Population<G>>& populations,
                  std::vector<Rng>& deme_rngs, double now,
                  std::uint64_t& msg_seq) {
    if (sync_ == MigrationSync::kSynchronous) {
      // Snapshot emigrants from every deme first, then integrate, so the
      // result is independent of deme iteration order.
      std::vector<std::vector<Individual<G>>> inbox(num_demes());
      struct Packet {
        int source;
        std::uint64_t id;
        std::uint64_t count;
      };
      std::vector<std::vector<Packet>> packets(num_demes());
      for (std::size_t d = 0; d < num_demes(); ++d) {
        for (std::size_t dst : topology_.neighbors_out(d)) {
          auto migrants = select_migrants(populations[d], policy_, deme_rngs[d]);
          const std::uint64_t id = ++msg_seq;
          trace_.migration(static_cast<int>(d), now, static_cast<int>(dst),
                           migrants.size(), to_string(policy_.selection), id);
          packets[dst].push_back(Packet{static_cast<int>(d), id,
                                        migrants.size()});
          for (auto& m : migrants) inbox[dst].push_back(std::move(m));
        }
      }
      for (std::size_t d = 0; d < num_demes(); ++d) {
        integrate_migrants(populations[d], inbox[d], policy_, deme_rngs[d]);
        for (const auto& p : packets[d])
          trace_.mark(static_cast<int>(d), now, "migrants_integrated",
                      p.source, p.count, p.id);
      }
    } else {
      // Asynchronous: integrate immediately, in deme order.
      for (std::size_t d = 0; d < num_demes(); ++d) {
        for (std::size_t dst : topology_.neighbors_out(d)) {
          auto migrants = select_migrants(populations[d], policy_, deme_rngs[d]);
          const std::uint64_t id = ++msg_seq;
          const std::uint64_t n_migrants = migrants.size();
          trace_.migration(static_cast<int>(d), now, static_cast<int>(dst),
                           n_migrants, to_string(policy_.selection), id);
          integrate_migrants(populations[dst], migrants, policy_, deme_rngs[d]);
          trace_.mark(static_cast<int>(dst), now, "migrants_integrated",
                      static_cast<int>(d), n_migrants, id);
        }
      }
    }
  }

  Topology topology_;
  MigrationPolicy policy_;
  std::vector<std::unique_ptr<EvolutionScheme<G>>> schemes_;
  MigrationSync sync_;
  MigrationTrigger<G> trigger_;
  obs::Tracer trace_{};
};

/// Helper: builds an island model whose demes all run the same generational
/// scheme — the most common configuration in the surveyed studies.
template <class G>
[[nodiscard]] IslandModel<G> make_uniform_island_model(
    Topology topology, MigrationPolicy policy, const Operators<G>& ops,
    std::size_t elitism = 1,
    MigrationSync sync = MigrationSync::kSynchronous) {
  std::vector<std::unique_ptr<EvolutionScheme<G>>> schemes;
  schemes.reserve(topology.num_demes());
  for (std::size_t d = 0; d < topology.num_demes(); ++d)
    schemes.push_back(std::make_unique<GenerationalScheme<G>>(ops, elitism));
  return IslandModel<G>(std::move(topology), policy, std::move(schemes), sync);
}

}  // namespace pga
