#pragma once
// Specialized Island Model (SIM) — Xiao & Armstrong (2003).
//
// A multi-objective problem is decomposed across islands: each sub-EA is
// responsible for a *subset* of the objectives (here expressed as a weight
// vector plus a scalarization type), and islands exchange individuals so
// specialists' building blocks combine.  Xiao & Armstrong compare seven
// scenarios differing in the number of sub-EAs, their specialization and the
// communication topology; experiment E8 reproduces that comparison on ZDT
// problems, scoring each scenario by the hypervolume of the combined
// non-dominated archive at a fixed evaluation budget.
//
// Design note: generalist islands in the original steer by Pareto rank;
// pgalib expresses generalists with Chebyshev scalarization (which targets
// balanced trade-off points individually), keeping every island a standard
// single-objective GA.  DESIGN.md records this substitution.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <functional>

#include "comm/collectives.hpp"
#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "multiobj/pareto.hpp"
#include "parallel/migration.hpp"
#include "parallel/topology.hpp"

namespace pga {

/// How an island condenses the objective vector into a scalar fitness.
enum class Scalarization { kWeightedSum, kChebyshev };

struct IslandSpecialization {
  std::vector<double> weights;  ///< one weight per objective, >= 0
  Scalarization type = Scalarization::kWeightedSum;
};

/// Problem adapter: minimize the scalarized objectives (fitness is negated).
template <class G>
class ScalarizedProblem final : public Problem<G> {
 public:
  ScalarizedProblem(const MultiObjectiveProblem<G>& mo,
                    IslandSpecialization spec)
      : mo_(mo), spec_(std::move(spec)) {
    if (spec_.weights.size() != mo_.num_objectives())
      throw std::invalid_argument("one weight per objective required");
  }

  [[nodiscard]] double fitness(const G& genome) const override {
    const auto f = mo_.evaluate(genome);
    double v = 0.0;
    if (spec_.type == Scalarization::kWeightedSum) {
      for (std::size_t i = 0; i < f.size(); ++i) v += spec_.weights[i] * f[i];
    } else {
      for (std::size_t i = 0; i < f.size(); ++i)
        v = std::max(v, spec_.weights[i] * f[i]);
    }
    return -v;
  }

  [[nodiscard]] std::string name() const override {
    return mo_.name() + "/scalarized";
  }

 private:
  const MultiObjectiveProblem<G>& mo_;
  IslandSpecialization spec_;
};

template <class G>
struct SpecializedIslandConfig {
  std::vector<IslandSpecialization> islands;
  Topology topology = Topology::ring(1);
  MigrationPolicy policy{};
  std::size_t deme_size = 32;
  std::size_t epochs = 50;  ///< deme generations
};

template <class G>
struct SpecializedIslandResult {
  /// Objective vectors of the combined non-dominated archive.
  std::vector<std::vector<double>> archive;
  /// The archived genomes, aligned with `archive`.
  std::vector<G> archive_genomes;
  std::size_t evaluations = 0;
};

/// Sequential SIM driver.
template <class G>
class SpecializedIslandModel {
 public:
  SpecializedIslandModel(SpecializedIslandConfig<G> config,
                         Operators<G> ops)
      : config_(std::move(config)), ops_(std::move(ops)) {
    if (config_.islands.empty())
      throw std::invalid_argument("SIM needs at least one island");
    if (config_.topology.num_demes() != config_.islands.size())
      throw std::invalid_argument("topology size != number of islands");
  }

  template <class MakeGenome>
  SpecializedIslandResult<G> run(const MultiObjectiveProblem<G>& mo,
                                 MakeGenome&& make, Rng& rng) {
    const std::size_t n = config_.islands.size();
    std::vector<std::unique_ptr<ScalarizedProblem<G>>> problems;
    std::vector<Population<G>> pops;
    std::vector<Rng> rngs;
    std::vector<std::unique_ptr<GenerationalScheme<G>>> schemes;
    for (std::size_t d = 0; d < n; ++d) {
      problems.push_back(
          std::make_unique<ScalarizedProblem<G>>(mo, config_.islands[d]));
      rngs.push_back(rng.split(d));
      pops.push_back(Population<G>::random(config_.deme_size, make, rngs[d]));
      schemes.push_back(std::make_unique<GenerationalScheme<G>>(ops_, 1));
    }

    SpecializedIslandResult<G> result;
    for (std::size_t d = 0; d < n; ++d)
      result.evaluations += pops[d].evaluate_all(*problems[d]);

    // Archive of (objectives, genome) pairs, pruned to non-dominated.
    auto update_archive = [&](const Population<G>& pop) {
      for (const auto& ind : pop) {
        auto f = mo.evaluate(ind.genome);  // bookkeeping, not counted as search
        bool dominated = false;
        for (const auto& a : result.archive)
          if (multiobj::dominates(a, f) || a == f) {
            dominated = true;
            break;
          }
        if (dominated) continue;
        // Remove archive entries the newcomer dominates.
        for (std::size_t i = result.archive.size(); i-- > 0;) {
          if (multiobj::dominates(f, result.archive[i])) {
            result.archive.erase(result.archive.begin() + static_cast<std::ptrdiff_t>(i));
            result.archive_genomes.erase(result.archive_genomes.begin() +
                                         static_cast<std::ptrdiff_t>(i));
          }
        }
        result.archive.push_back(std::move(f));
        result.archive_genomes.push_back(ind.genome);
      }
    };

    for (std::size_t epoch = 1; epoch <= config_.epochs; ++epoch) {
      for (std::size_t d = 0; d < n; ++d)
        result.evaluations += schemes[d]->step(pops[d], *problems[d], rngs[d]);

      if (config_.policy.enabled() && epoch % config_.policy.interval == 0) {
        // Emigrants are re-scored under the destination's scalarization so
        // fitness stays comparable inside each deme.
        std::vector<std::vector<Individual<G>>> inbox(n);
        for (std::size_t d = 0; d < n; ++d)
          for (std::size_t dst : config_.topology.neighbors_out(d)) {
            auto migrants = select_migrants(pops[d], config_.policy, rngs[d]);
            for (auto& m : migrants) inbox[dst].push_back(std::move(m));
          }
        for (std::size_t d = 0; d < n; ++d) {
          for (auto& m : inbox[d]) {
            m.fitness = problems[d]->fitness(m.genome);
            ++result.evaluations;
          }
          integrate_migrants(pops[d], inbox[d], config_.policy, rngs[d]);
        }
      }

      for (std::size_t d = 0; d < n; ++d) update_archive(pops[d]);
    }
    return result;
  }

 private:
  SpecializedIslandConfig<G> config_;
  Operators<G> ops_;
};

// ---------------------------------------------------------------------------
// Distributed SIM: one specialized island per rank
// ---------------------------------------------------------------------------

namespace sim_detail {
inline constexpr int kMigrantTag = 40;
inline constexpr int kArchiveTag = 41;
}  // namespace sim_detail

/// Per-rank result of the distributed SIM; only rank 0 carries the combined
/// archive.
template <class G>
struct DistributedSimReport {
  std::vector<std::vector<double>> archive;  ///< rank 0 only
  std::size_t evaluations = 0;               ///< this rank's evaluations
};

/// Per-rank body of the distributed specialized island model: rank r runs
/// island r of `cfg` as a message-passing process; migration packets travel
/// the topology's edges each policy interval (asynchronously: islands never
/// block on immigrants), and rank 0 gathers every island's local front at
/// the end to build the combined non-dominated archive.
template <class G>
DistributedSimReport<G> run_sim_rank(comm::Transport& t,
                                     const MultiObjectiveProblem<G>& mo,
                                     const SpecializedIslandConfig<G>& cfg,
                                     const Operators<G>& ops,
                                     const std::function<G(Rng&)>& make_genome,
                                     std::uint64_t seed,
                                     double eval_cost_s = 0.0) {
  const int rank = t.rank();
  const std::size_t island = static_cast<std::size_t>(rank);
  if (cfg.islands.size() != static_cast<std::size_t>(t.world_size()))
    throw std::invalid_argument("one rank per island required");

  ScalarizedProblem<G> problem(mo, cfg.islands[island]);
  Rng rng = Rng(seed).split(island);
  GenerationalScheme<G> scheme(ops, 1);
  auto pop = Population<G>::random(cfg.deme_size, make_genome, rng);

  DistributedSimReport<G> report;
  report.evaluations += pop.evaluate_all(problem);
  t.compute(static_cast<double>(report.evaluations) * eval_cost_s);

  for (std::size_t epoch = 1; epoch <= cfg.epochs; ++epoch) {
    const std::size_t gen_evals = scheme.step(pop, problem, rng);
    report.evaluations += gen_evals;
    t.compute(static_cast<double>(gen_evals) * eval_cost_s);

    if (cfg.policy.enabled() && epoch % cfg.policy.interval == 0) {
      for (std::size_t dst : cfg.topology.neighbors_out(island)) {
        auto migrants = select_migrants(pop, cfg.policy, rng);
        comm::ByteWriter w;
        w.write<std::uint32_t>(static_cast<std::uint32_t>(migrants.size()));
        for (const auto& m : migrants) comm::serialize(w, m.genome);
        t.send(static_cast<int>(dst), sim_detail::kMigrantTag,
               std::move(w).take());
      }
      // Asynchronous: integrate whatever has arrived, re-scoring under this
      // island's scalarization.
      while (auto msg = t.try_recv(comm::Transport::kAnySource,
                                   sim_detail::kMigrantTag)) {
        comm::ByteReader r(msg->payload);
        const auto count = r.read<std::uint32_t>();
        std::vector<Individual<G>> immigrants;
        immigrants.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          G genome;
          comm::deserialize(r, genome);
          Individual<G> ind(std::move(genome));
          ind.fitness = problem.fitness(ind.genome);
          ind.evaluated = true;
          ++report.evaluations;
          immigrants.push_back(std::move(ind));
        }
        integrate_migrants(pop, immigrants, cfg.policy, rng);
      }
    }
  }

  // Gather local members' objective vectors at rank 0.
  comm::ByteWriter w;
  w.write<std::uint32_t>(static_cast<std::uint32_t>(pop.size()));
  for (const auto& ind : pop) {
    const auto f = mo.evaluate(ind.genome);
    w.write_vector(f);
  }
  auto parts = comm::gather(t, /*root=*/0, sim_detail::kArchiveTag,
                            std::move(w).take());
  if (rank == 0) {
    std::vector<std::vector<double>> all_points;
    for (const auto& part : parts) {
      comm::ByteReader r(part);
      const auto count = r.read<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i)
        all_points.push_back(r.read_vector<double>());
    }
    for (std::size_t idx : multiobj::nondominated_indices(all_points))
      report.archive.push_back(all_points[idx]);
  }
  return report;
}

/// The seven scenarios of Xiao & Armstrong (2003), instantiated for a
/// bi-objective problem.  Scenario ids follow the paper's S1..S7 ordering:
/// varying sub-EA count, specialization mix and topology.
template <class G>
[[nodiscard]] SpecializedIslandConfig<G> sim_scenario(int id,
                                                      std::size_t deme_size,
                                                      std::size_t epochs) {
  SpecializedIslandConfig<G> cfg;
  cfg.deme_size = deme_size;
  cfg.epochs = epochs;
  cfg.policy.interval = 5;
  cfg.policy.count = 2;
  cfg.policy.selection = MigrantSelection::kBest;
  cfg.policy.replacement = MigrantReplacement::kWorst;

  auto spec = [](double w0, double w1,
                 Scalarization s = Scalarization::kWeightedSum) {
    return IslandSpecialization{{w0, w1}, s};
  };

  switch (id) {
    case 1:  // single generalist EA (no specialization, no migration)
      cfg.islands = {spec(0.5, 0.5)};
      cfg.topology = Topology::isolated(1);
      cfg.policy.interval = 0;
      break;
    case 2:  // two specialists, isolated
      cfg.islands = {spec(1.0, 0.0), spec(0.0, 1.0)};
      cfg.topology = Topology::isolated(2);
      cfg.policy.interval = 0;
      break;
    case 3:  // two specialists, ring migration
      cfg.islands = {spec(1.0, 0.0), spec(0.0, 1.0)};
      cfg.topology = Topology::bidirectional_ring(2);
      break;
    case 4:  // two specialists + a Chebyshev generalist hub (star)
      cfg.islands = {spec(1.0, 1.0, Scalarization::kChebyshev),
                     spec(1.0, 0.0), spec(0.0, 1.0)};
      cfg.topology = Topology::star(3);
      break;
    case 5:  // four weight-spread islands, ring
      cfg.islands = {spec(1.0, 0.0), spec(2.0 / 3, 1.0 / 3),
                     spec(1.0 / 3, 2.0 / 3), spec(0.0, 1.0)};
      cfg.topology = Topology::bidirectional_ring(4);
      break;
    case 6:  // four weight-spread islands, fully connected
      cfg.islands = {spec(1.0, 0.0), spec(2.0 / 3, 1.0 / 3),
                     spec(1.0 / 3, 2.0 / 3), spec(0.0, 1.0)};
      cfg.topology = Topology::complete(4);
      break;
    case 7:  // two specialists + two Chebyshev generalists, fully connected
      cfg.islands = {spec(1.0, 0.0), spec(0.0, 1.0),
                     spec(1.0, 1.0, Scalarization::kChebyshev),
                     spec(1.5, 0.75, Scalarization::kChebyshev)};
      cfg.topology = Topology::complete(4);
      break;
    default:
      throw std::invalid_argument("SIM scenario id must be 1..7");
  }
  return cfg;
}

}  // namespace pga
