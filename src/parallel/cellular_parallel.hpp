#pragma once
// Fine-grained parallel GA: the global cellular grid is partitioned into
// horizontal strips, one per rank, with ghost-row exchange at the strip
// boundaries — the standard decomposition used by fine-grained
// implementations on distributed memory (Pelikan, Parthasarathy & Ramraj
// 2002 in Charm++; Kohlmorgen et al. on MasPar).
//
// Two boundary protocols:
//   * synchronous  — every sweep exchanges fresh boundary rows and blocks for
//     the neighbours' rows (bulk-synchronous; scalability limited by the
//     slowest rank and by latency per sweep);
//   * asynchronous — boundary rows are posted every sweep but the receiver
//     integrates whatever has arrived and never blocks (Pelikan's "fully
//     asynchronous and distributed" scheme; stale ghosts are allowed).
//
// Experiment E11 measures virtual-time efficiency of both protocols up to 64
// simulated processors.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/cellular.hpp"
#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"

namespace pga {

template <class G>
struct ParallelCellularConfig {
  std::size_t width = 16;
  std::size_t height = 16;  ///< global rows; ranks own contiguous strips
  Operators<G> ops{};
  Neighborhood neighborhood = Neighborhood::kLinear5;
  ReplacePolicy replace = ReplacePolicy::kIfBetterOrEqual;
  std::size_t sweeps = 50;
  bool async = false;
  double eval_cost_s = 0.0;
  std::uint64_t seed = 1;
  std::function<G(Rng&)> make_genome;
  /// Optional event sink: each rank probes its owned-cell strip once per
  /// sweep (search_stats + evaluation_batch).  Takeover growth curves over a
  /// strip sample are exact when `probe.pairwise_sample_cap` >= strip size.
  /// Null (default) costs one branch per sweep.
  obs::Tracer trace{};
  obs::ProbeConfig probe{};
};

template <class G>
struct CellularRankReport {
  Individual<G> best{};
  std::size_t evaluations = 0;
  std::size_t sweeps = 0;
  std::size_t stale_ghost_sweeps = 0;  ///< async sweeps run on old boundary data
};

namespace cell_detail {
// Ghost tags carry the sweep parity so a rank one sweep ahead cannot have its
// fresh boundary rows consumed as the neighbour's *current* rows (ranks can
// skew by at most one sweep, so one parity bit suffices).
inline constexpr int kGhostUpBase = 20;    ///< rows sent to the rank above (+parity)
inline constexpr int kGhostDownBase = 22;  ///< rows sent to the rank below (+parity)

[[nodiscard]] constexpr bool is_ghost_up(int tag) noexcept {
  return tag == kGhostUpBase || tag == kGhostUpBase + 1;
}
[[nodiscard]] constexpr bool is_ghost_down(int tag) noexcept {
  return tag == kGhostDownBase || tag == kGhostDownBase + 1;
}

/// Relative (dx, dy) offsets of a neighborhood, center first.
[[nodiscard]] inline std::vector<std::pair<long long, long long>>
neighborhood_offsets(Neighborhood shape) {
  std::vector<std::pair<long long, long long>> out;
  out.emplace_back(0, 0);
  auto add = [&](long long dx, long long dy) { out.emplace_back(dx, dy); };
  switch (shape) {
    case Neighborhood::kLinear5:
      add(1, 0); add(-1, 0); add(0, 1); add(0, -1);
      break;
    case Neighborhood::kCompact9:
      for (long long dy = -1; dy <= 1; ++dy)
        for (long long dx = -1; dx <= 1; ++dx)
          if (dx != 0 || dy != 0) add(dx, dy);
      break;
    case Neighborhood::kLinear9:
      add(1, 0); add(-1, 0); add(0, 1); add(0, -1);
      add(2, 0); add(-2, 0); add(0, 2); add(0, -2);
      break;
    case Neighborhood::kCompact13:
      for (long long dy = -1; dy <= 1; ++dy)
        for (long long dx = -1; dx <= 1; ++dx)
          if (dx != 0 || dy != 0) add(dx, dy);
      add(2, 0); add(-2, 0); add(0, 2); add(0, -2);
      break;
  }
  return out;
}

/// Ghost depth required by a neighborhood shape (max axial reach).
[[nodiscard]] constexpr std::size_t ghost_depth(Neighborhood n) noexcept {
  switch (n) {
    case Neighborhood::kLinear5:
    case Neighborhood::kCompact9:
      return 1;
    case Neighborhood::kLinear9:
    case Neighborhood::kCompact13:
      return 2;
  }
  return 1;
}

template <class G>
[[nodiscard]] std::vector<std::uint8_t> pack_rows(
    const std::vector<Individual<G>>& cells, std::size_t width,
    std::size_t first_row, std::size_t rows) {
  comm::ByteWriter w;
  w.write<std::uint32_t>(static_cast<std::uint32_t>(rows * width));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < width; ++c)
      comm::serialize(w, cells[(first_row + r) * width + c]);
  return std::move(w).take();
}

template <class G>
void unpack_rows(const std::vector<std::uint8_t>& bytes,
                 std::vector<Individual<G>>& cells, std::size_t width,
                 std::size_t first_row) {
  comm::ByteReader r(bytes);
  const auto n = r.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i)
    comm::deserialize(r, cells[first_row * width + i]);
}
}  // namespace cell_detail

/// Extracts the best owned individual into the report.
template <class G>
CellularRankReport<G> finish_cellular(CellularRankReport<G> report,
                                      const std::vector<Individual<G>>& cells,
                                      std::size_t width, std::size_t depth,
                                      std::size_t my_rows,
                                      std::size_t sweeps_done) {
  report.sweeps = sweeps_done;
  std::size_t best = depth * width;
  for (std::size_t i = depth * width; i < (depth + my_rows) * width; ++i)
    if (cells[i].fitness > cells[best].fitness) best = i;
  report.best = cells[best];
  return report;
}

/// Per-rank body of the distributed cellular GA.  The global grid is
/// `cfg.height` rows by `cfg.width` columns on a torus; rank k owns rows
/// [k*height/P, (k+1)*height/P).  Requires height >= P * ghost_depth.
template <class G>
CellularRankReport<G> run_cellular_rank(comm::Transport& t,
                                        const Problem<G>& problem,
                                        const ParallelCellularConfig<G>& cfg) {
  const int rank = t.rank();
  const int world = t.world_size();
  const std::size_t depth = cell_detail::ghost_depth(cfg.neighborhood);

  // Strip bounds (remainder rows go to the last ranks).
  const std::size_t base = cfg.height / static_cast<std::size_t>(world);
  const std::size_t extra = cfg.height % static_cast<std::size_t>(world);
  auto strip_rows = [&](int r) {
    return base + (static_cast<std::size_t>(r) >=
                           static_cast<std::size_t>(world) - extra
                       ? 1u
                       : 0u);
  };
  std::size_t my_rows = strip_rows(rank);
  if (my_rows < depth)
    throw std::invalid_argument("cellular strip thinner than ghost depth");

  const int up = (rank + world - 1) % world;    // owns the rows above mine
  const int down = (rank + 1) % world;          // owns the rows below mine

  // Local layout: depth ghost rows, my_rows own rows, depth ghost rows.
  const std::size_t total_rows = my_rows + 2 * depth;
  const std::size_t W = cfg.width;
  Rng rng = Rng(cfg.seed).split(static_cast<std::uint64_t>(rank));

  std::vector<Individual<G>> cells;
  cells.reserve(total_rows * W);
  for (std::size_t i = 0; i < total_rows * W; ++i) {
    Individual<G> ind(cfg.make_genome(rng));
    ind.fitness = problem.fitness(ind.genome);
    ind.evaluated = true;
    cells.push_back(std::move(ind));
  }

  CellularRankReport<G> report;
  report.evaluations += my_rows * W;  // initial evaluation of owned cells
  t.compute(static_cast<double>(my_rows * W) * cfg.eval_cost_s);

  // Search-dynamics probe over the owned strip (ghost rows excluded — they
  // are copies of neighbours' cells and would bias diversity/takeover).
  // Compute spans come from the transport itself, so this emits only
  // search_stats + evaluation_batch events.
  obs::GenerationProbe<G> probe(cfg.trace, rank, cfg.probe);
  probe.observe_range(cells.begin() + static_cast<std::ptrdiff_t>(depth * W),
                      cells.begin() +
                          static_cast<std::ptrdiff_t>((depth + my_rows) * W),
                      t.now(), 0, my_rows * W);

  // Neighborhood offsets relative to a cell.
  const auto offsets = cell_detail::neighborhood_offsets(cfg.neighborhood);

  auto cell_at = [&](std::size_t local_row, std::size_t col) -> Individual<G>& {
    return cells[local_row * W + col];
  };

  for (std::size_t sweep = 0; sweep < cfg.sweeps; ++sweep) {
    // --- Boundary exchange --------------------------------------------------
    if (world > 1) {
      const int parity = static_cast<int>(sweep % 2);
      t.send(up, cell_detail::kGhostUpBase + parity,
             cell_detail::pack_rows(cells, W, depth, depth));
      t.send(down, cell_detail::kGhostDownBase + parity,
             cell_detail::pack_rows(cells, W, my_rows, depth));
      // The rank above sends me its bottom rows tagged "down"; they become my
      // TOP ghost.  Symmetrically "up"-tagged rows become my bottom ghost.
      bool got_top = false, got_bottom = false;
      if (cfg.async) {
        // Integrate whatever arrived (any parity); run with stale ghosts
        // otherwise.
        while (auto m = t.try_recv(comm::Transport::kAnySource,
                                   comm::Transport::kAnyTag)) {
          if (cell_detail::is_ghost_down(m->tag)) {
            cell_detail::unpack_rows(m->payload, cells, W, 0);
            got_top = true;
          } else if (cell_detail::is_ghost_up(m->tag)) {
            cell_detail::unpack_rows(m->payload, cells, W, depth + my_rows);
            got_bottom = true;
          }
        }
        if (!got_top || !got_bottom) ++report.stale_ghost_sweeps;
      } else {
        while (!got_top) {
          auto m = t.recv(up, cell_detail::kGhostDownBase + parity);
          if (!m) return finish_cellular(report, cells, W, depth, my_rows, sweep);
          cell_detail::unpack_rows(m->payload, cells, W, 0);
          got_top = true;
        }
        while (!got_bottom) {
          auto m = t.recv(down, cell_detail::kGhostUpBase + parity);
          if (!m) return finish_cellular(report, cells, W, depth, my_rows, sweep);
          cell_detail::unpack_rows(m->payload, cells, W, depth + my_rows);
          got_bottom = true;
        }
      }
    } else {
      // Single rank: wrap ghosts locally (full torus).
      for (std::size_t d = 0; d < depth; ++d)
        for (std::size_t c = 0; c < W; ++c) {
          cell_at(d, c) = cell_at(my_rows + d, c);                  // top ghost
          cell_at(depth + my_rows + d, c) = cell_at(depth + d, c);  // bottom
        }
    }

    // --- Synchronous local update (against the sweep-start snapshot) -------
    std::size_t sweep_evals = 0;  // batched into one compute() declaration
    std::vector<Individual<G>> next(cells.begin() + static_cast<std::ptrdiff_t>(depth * W),
                                    cells.begin() + static_cast<std::ptrdiff_t>((depth + my_rows) * W));
    for (std::size_t row = 0; row < my_rows; ++row) {
      for (std::size_t col = 0; col < W; ++col) {
        const std::size_t lr = depth + row;
        // Neighborhood fitness (center first).
        std::vector<double> hood_fitness;
        std::vector<std::pair<std::size_t, std::size_t>> hood_pos;
        hood_fitness.reserve(offsets.size());
        for (auto [dx, dy] : offsets) {
          const std::size_t nr = static_cast<std::size_t>(
              static_cast<long long>(lr) + dy);  // within ghost halo
          const std::size_t nc = static_cast<std::size_t>(
              (static_cast<long long>(col) + dx + static_cast<long long>(W)) %
              static_cast<long long>(W));
          hood_pos.emplace_back(nr, nc);
          hood_fitness.push_back(cell_at(nr, nc).fitness);
        }
        const auto mate_pos = hood_pos[cfg.ops.select(hood_fitness, rng)];
        const auto& center = cell_at(lr, col);
        const auto& mate = cell_at(mate_pos.first, mate_pos.second);
        G child = center.genome;
        if (rng.bernoulli(cfg.ops.crossover_rate)) {
          auto [a, b] = cfg.ops.cross(center.genome, mate.genome, rng);
          child = rng.bernoulli(0.5) ? std::move(a) : std::move(b);
        }
        cfg.ops.mutate(child, rng);
        Individual<G> offspring(std::move(child));
        offspring.fitness = problem.fitness(offspring.genome);
        offspring.evaluated = true;
        ++report.evaluations;
        ++sweep_evals;

        auto& slot = next[row * W + col];
        switch (cfg.replace) {
          case ReplacePolicy::kAlways:
            slot = std::move(offspring);
            break;
          case ReplacePolicy::kIfBetter:
            if (offspring.fitness > slot.fitness) slot = std::move(offspring);
            break;
          case ReplacePolicy::kIfBetterOrEqual:
            if (offspring.fitness >= slot.fitness) slot = std::move(offspring);
            break;
        }
      }
    }
    std::copy(next.begin(), next.end(),
              cells.begin() + static_cast<std::ptrdiff_t>(depth * W));
    t.compute(static_cast<double>(sweep_evals) * cfg.eval_cost_s);
    ++report.sweeps;
    if (cfg.trace) {
      cfg.trace.evaluation_batch(rank, t.now(), sweep_evals);
      probe.observe_range(
          cells.begin() + static_cast<std::ptrdiff_t>(depth * W),
          cells.begin() + static_cast<std::ptrdiff_t>((depth + my_rows) * W),
          t.now(), report.sweeps, sweep_evals);
    }
  }

  return finish_cellular(report, cells, W, depth, my_rows, cfg.sweeps);
}

}  // namespace pga
