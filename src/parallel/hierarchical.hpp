#pragma once
// Hierarchical Genetic Algorithm (Sefrioui & Périaux 2000).
//
// Demes are arranged in a tree of layers.  The top layer evaluates with the
// most accurate (most expensive) model and exploits; lower layers use
// progressively cheaper, noisier models and explore.  Every migration epoch,
// each deme promotes its best individuals to its parent — where they are
// *re-evaluated under the parent's higher-fidelity model* — and parents push
// random individuals down to refresh the children's diversity.
//
// The headline claim the survey reports: the mixed hierarchy reaches the
// same solution quality as a high-fidelity-only GA roughly 3x faster
// (nozzle reconstruction).  Experiment E7 reproduces the cost-to-quality
// comparison on the multi-fidelity airfoil surrogate.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/rng.hpp"
#include "obs/events.hpp"

namespace pga {

/// A problem with several model fidelities.  Level 0 is the most accurate and
/// most expensive; higher levels are cheaper approximations.
template <class G>
class MultiFidelityProblem {
 public:
  virtual ~MultiFidelityProblem() = default;

  [[nodiscard]] virtual std::size_t num_levels() const = 0;

  /// Fitness (maximized) under the given fidelity level.
  [[nodiscard]] virtual double fitness(const G& genome,
                                       std::size_t level) const = 0;

  /// Cost of one evaluation at `level`, in arbitrary consistent units
  /// (e.g. CPU-seconds of the real solver it stands in for).
  [[nodiscard]] virtual double cost(std::size_t level) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapter: present one fidelity level of a MultiFidelityProblem as a plain
/// Problem so the standard schemes can drive it.
template <class G>
class FidelityView final : public Problem<G> {
 public:
  FidelityView(const MultiFidelityProblem<G>& problem, std::size_t level)
      : problem_(problem), level_(level) {}

  [[nodiscard]] double fitness(const G& genome) const override {
    return problem_.fitness(genome, level_);
  }
  [[nodiscard]] std::string name() const override {
    return problem_.name() + "@L" + std::to_string(level_);
  }
  [[nodiscard]] std::size_t level() const noexcept { return level_; }

 private:
  const MultiFidelityProblem<G>& problem_;
  std::size_t level_;
};

struct HgaConfig {
  std::size_t layers = 3;       ///< tree depth; layer 0 is the root
  std::size_t fanout = 2;       ///< children per node
  std::size_t deme_size = 20;
  std::size_t migration_interval = 4;  ///< deme generations between exchanges
  std::size_t promote_count = 2;       ///< best individuals sent to the parent
  std::size_t refresh_count = 1;       ///< individuals pushed down per child
  /// Optional event sink; one rank lane per tree node (BFS index), virtual
  /// time = epoch index.  Promotions/refreshes emit correlated kMigration +
  /// "migrants_integrated" pairs ("promote" up-edges, "refresh" down-edges),
  /// so the tree's exchange pattern is visible to the causal profiler even
  /// though the engine is in-process.  Null (default) = one branch per site.
  obs::Tracer trace{};
};

template <class G>
struct HgaResult {
  Individual<G> best{};      ///< best found, fitness at level 0
  double total_cost = 0.0;   ///< summed model-evaluation cost
  std::size_t evaluations = 0;
  std::size_t epochs = 0;
  /// (cumulative cost, best level-0 fitness) after each epoch — the
  /// cost-to-quality trajectory E7 plots.
  std::vector<std::pair<double, double>> trajectory;
};

template <class G>
class HierarchicalGA {
 public:
  /// `ops` drive every deme; deme at layer L evaluates at fidelity
  /// min(L, num_levels-1).
  HierarchicalGA(HgaConfig config, Operators<G> ops,
                 const MultiFidelityProblem<G>& problem)
      : config_(config), ops_(std::move(ops)), problem_(problem) {
    if (config_.layers == 0)
      throw std::invalid_argument("HGA needs at least one layer");
    // Build the tree (BFS order), record each node's layer and parent.
    std::size_t nodes_in_layer = 1;
    for (std::size_t layer = 0; layer < config_.layers; ++layer) {
      for (std::size_t i = 0; i < nodes_in_layer; ++i) {
        layer_of_.push_back(layer);
        const std::size_t me = layer_of_.size() - 1;
        if (me > 0) parent_of_.push_back((me - 1) / config_.fanout);
        else parent_of_.push_back(me);  // root is its own parent
      }
      nodes_in_layer *= config_.fanout;
    }
    for (std::size_t node = 0; node < layer_of_.size(); ++node) {
      views_.push_back(std::make_unique<FidelityView<G>>(
          problem_, std::min(layer_of_[node], problem_.num_levels() - 1)));
    }
  }

  [[nodiscard]] std::size_t num_demes() const noexcept {
    return layer_of_.size();
  }
  [[nodiscard]] std::size_t layer_of(std::size_t node) const {
    return layer_of_[node];
  }

  /// Runs until the cost budget is exhausted or `max_epochs` hit.  `make`
  /// builds random genomes.
  template <class MakeGenome>
  HgaResult<G> run(double cost_budget, std::size_t max_epochs,
                   MakeGenome&& make, Rng& rng) {
    const std::size_t n = num_demes();
    std::vector<Population<G>> pops;
    std::vector<Rng> rngs;
    std::vector<std::unique_ptr<GenerationalScheme<G>>> schemes;
    pops.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      rngs.push_back(rng.split(d));
      pops.push_back(Population<G>::random(config_.deme_size, make, rngs[d]));
      schemes.push_back(std::make_unique<GenerationalScheme<G>>(ops_, 1));
    }

    HgaResult<G> result;
    auto charge = [&](std::size_t node, std::size_t evals) {
      result.evaluations += evals;
      result.total_cost +=
          static_cast<double>(evals) * problem_.cost(views_[node]->level());
    };
    for (std::size_t d = 0; d < n; ++d)
      charge(d, pops[d].evaluate_all(*views_[d]));

    auto snapshot = [&] {
      // Best according to the *top-fidelity* model, taken from the root deme
      // (the only one whose fitness values are level-0 comparable).
      result.trajectory.emplace_back(result.total_cost,
                                     pops[0].best_fitness());
    };
    snapshot();

    // Per-run migration-packet ids (1-based) pairing each promote/refresh
    // kMigration event with its "migrants_integrated" mark.
    std::uint64_t msg_seq = 0;
    while (result.total_cost < cost_budget && result.epochs < max_epochs) {
      for (std::size_t d = 0; d < n; ++d) {
        const std::size_t evals = schemes[d]->step(pops[d], *views_[d], rngs[d]);
        charge(d, evals);
        if (config_.trace) {
          // Like the sequential island engine, each deme's generation fills
          // the whole epoch slot [epoch, epoch+1]: lanes show the logical
          // concurrency of the tree, not the single-thread interleaving.
          const auto now = static_cast<double>(result.epochs + 1);
          config_.trace.span_begin(static_cast<int>(d), now - 1.0, "compute");
          config_.trace.evaluation_batch(static_cast<int>(d), now, evals);
          config_.trace.span_end(static_cast<int>(d), now, "compute");
          const auto [worst_i, best_i] = pops[d].minmax_indices();
          config_.trace.gen_stats(static_cast<int>(d), now, result.epochs + 1,
                                  result.evaluations, pops[d][best_i].fitness,
                                  pops[d].mean_fitness(),
                                  pops[d][worst_i].fitness);
        }
      }
      ++result.epochs;
      const auto now = static_cast<double>(result.epochs);

      if (result.epochs % config_.migration_interval == 0) {
        // Upward promotion: children send their best to the parent, where the
        // immigrants are re-scored under the parent's model.
        for (std::size_t d = 1; d < n; ++d) {
          const std::size_t parent = parent_of_[d];
          Population<G>& src = pops[d];
          Population<G>& dst = pops[parent];
          std::vector<std::size_t> idx(src.size());
          for (std::size_t i = 0; i < src.size(); ++i) idx[i] = i;
          const std::size_t k = std::min(config_.promote_count, src.size());
          std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                            idx.end(), [&](std::size_t a, std::size_t b) {
                              return src[a].fitness > src[b].fitness;
                            });
          const std::uint64_t id = ++msg_seq;
          config_.trace.migration(static_cast<int>(d), now,
                                  static_cast<int>(parent), k, "promote", id);
          for (std::size_t i = 0; i < k; ++i) {
            Individual<G> immigrant = src[idx[i]];
            immigrant.fitness = views_[parent]->fitness(immigrant.genome);
            immigrant.evaluated = true;
            charge(parent, 1);
            const std::size_t worst = dst.worst_index();
            if (immigrant.fitness > dst[worst].fitness)
              dst[worst] = std::move(immigrant);
          }
          config_.trace.mark(static_cast<int>(parent), now,
                             "migrants_integrated", static_cast<int>(d), k,
                             id);
        }
        // Downward refresh: parents push random members to each child (the
        // child re-scores them under its own cheaper model).
        for (std::size_t d = 1; d < n; ++d) {
          const std::size_t parent = parent_of_[d];
          const std::uint64_t id = ++msg_seq;
          config_.trace.migration(static_cast<int>(parent), now,
                                  static_cast<int>(d), config_.refresh_count,
                                  "refresh", id);
          for (std::size_t i = 0; i < config_.refresh_count; ++i) {
            Individual<G> down =
                pops[parent][rngs[parent].index(pops[parent].size())];
            down.fitness = views_[d]->fitness(down.genome);
            down.evaluated = true;
            charge(d, 1);
            pops[d][rngs[d].index(pops[d].size())] = std::move(down);
          }
          config_.trace.mark(static_cast<int>(d), now, "migrants_integrated",
                             static_cast<int>(parent), config_.refresh_count,
                             id);
        }
      }
      snapshot();
    }

    result.best = pops[0].best();
    return result;
  }

 private:
  HgaConfig config_;
  Operators<G> ops_;
  const MultiFidelityProblem<G>& problem_;
  std::vector<std::size_t> layer_of_;
  std::vector<std::size_t> parent_of_;
  std::vector<std::unique_ptr<FidelityView<G>>> views_;
};

}  // namespace pga
