#pragma once
// Migration policy: who leaves, how often, and who they replace.
//
// Alba & Troya (2000) show that migration frequency and migrant selection
// govern coarse-grained PGA behaviour across problem classes (experiment E3);
// Cantú-Paz quantifies rate/interval trade-offs.  This header captures the
// policy knobs shared by the sequential and distributed island models.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/population.hpp"
#include "core/rng.hpp"

namespace pga {

/// How emigrants are chosen from the source deme.
enum class MigrantSelection { kBest, kRandom, kTournament };

/// How immigrants are inserted into the destination deme.
enum class MigrantReplacement {
  kWorst,          ///< overwrite the current worst individuals
  kRandom,         ///< overwrite uniformly random individuals
  kWorstIfBetter,  ///< overwrite worst only when the immigrant is fitter
};

[[nodiscard]] constexpr const char* to_string(MigrantSelection s) noexcept {
  switch (s) {
    case MigrantSelection::kBest: return "best";
    case MigrantSelection::kRandom: return "random";
    case MigrantSelection::kTournament: return "tournament";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(MigrantReplacement r) noexcept {
  switch (r) {
    case MigrantReplacement::kWorst: return "worst";
    case MigrantReplacement::kRandom: return "random";
    case MigrantReplacement::kWorstIfBetter: return "worst-if-better";
  }
  return "?";
}

struct MigrationPolicy {
  /// Deme generations between migration epochs (0 disables migration).
  std::size_t interval = 16;
  /// Emigrants per out-edge per epoch ("migration rate").
  std::size_t count = 1;
  MigrantSelection selection = MigrantSelection::kBest;
  MigrantReplacement replacement = MigrantReplacement::kWorst;
  /// Tournament size when selection == kTournament.
  std::size_t tournament_size = 3;

  [[nodiscard]] bool enabled() const noexcept { return interval > 0; }
};

/// Picks `policy.count` emigrant copies from `pop` (with replacement across
/// picks for random/tournament; "best" sends the top-k distinct individuals).
template <class G>
[[nodiscard]] std::vector<Individual<G>> select_migrants(
    const Population<G>& pop, const MigrationPolicy& policy, Rng& rng) {
  std::vector<Individual<G>> out;
  out.reserve(policy.count);
  switch (policy.selection) {
    case MigrantSelection::kBest: {
      // Top-k by fitness without mutating the deme.
      std::vector<std::size_t> idx(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) idx[i] = i;
      const std::size_t k = std::min(policy.count, pop.size());
      std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                        idx.end(), [&](std::size_t a, std::size_t b) {
                          return pop[a].fitness > pop[b].fitness;
                        });
      for (std::size_t i = 0; i < k; ++i) out.push_back(pop[idx[i]]);
      break;
    }
    case MigrantSelection::kRandom: {
      for (std::size_t i = 0; i < policy.count; ++i)
        out.push_back(pop[rng.index(pop.size())]);
      break;
    }
    case MigrantSelection::kTournament: {
      for (std::size_t i = 0; i < policy.count; ++i) {
        std::size_t best = rng.index(pop.size());
        for (std::size_t t = 1; t < policy.tournament_size; ++t) {
          const std::size_t c = rng.index(pop.size());
          if (pop[c].fitness > pop[best].fitness) best = c;
        }
        out.push_back(pop[best]);
      }
      break;
    }
  }
  return out;
}

/// Inserts immigrants into `pop` according to the replacement policy.
template <class G>
void integrate_migrants(Population<G>& pop,
                        const std::vector<Individual<G>>& immigrants,
                        const MigrationPolicy& policy, Rng& rng) {
  for (const auto& immigrant : immigrants) {
    switch (policy.replacement) {
      case MigrantReplacement::kWorst: {
        pop[pop.worst_index()] = immigrant;
        break;
      }
      case MigrantReplacement::kRandom: {
        pop[rng.index(pop.size())] = immigrant;
        break;
      }
      case MigrantReplacement::kWorstIfBetter: {
        const std::size_t w = pop.worst_index();
        if (immigrant.fitness > pop[w].fitness) pop[w] = immigrant;
        break;
      }
    }
  }
}

}  // namespace pga
