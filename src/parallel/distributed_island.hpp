#pragma once
// Distributed island model: one deme per rank, migration over a Transport.
//
// The same migration policy as the sequential IslandModel, but the demes are
// message-passing processes: run it on comm::InprocCluster for real threads
// or on sim::SimCluster for virtual-time speedup measurements (experiments
// E2, E10).  Synchronous mode blocks at each migration epoch until one
// migrant packet from every in-neighbor has arrived — reproducing the
// barrier penalty Alba & Troya (2001) analyze — while asynchronous mode
// integrates whatever has already arrived and never waits.
//
// Wire protocol (tags):
//   kMigrantTag  one packet per out-edge per epoch: [count, Individual...]
//   kStopTag     broadcast when a rank reaches the target fitness

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/termination.hpp"
#include "obs/events.hpp"
#include "obs/probes.hpp"
#include "parallel/migration.hpp"
#include "parallel/topology.hpp"

namespace pga {

template <class G>
struct DemeReport {
  Individual<G> best{};
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  bool reached_target = false;
  bool stopped_by_peer = false;
};

template <class G>
struct DistributedIslandConfig {
  Topology topology = Topology::ring(1);
  MigrationPolicy policy{};
  StopCondition stop{};
  std::size_t deme_size = 64;
  /// Asynchronous migration: never wait for in-neighbors.
  bool async = false;
  /// Virtual CPU seconds declared per fitness evaluation (drives the
  /// simulator's timing; ignored by the thread transport).
  double eval_cost_s = 0.0;
  /// SoA evaluation route for the deme population.  kAuto calibrates by
  /// wall-clock, so its cold-call evaluation count is host-adaptive (see
  /// the evaluate_all contract); pin kScalar/kBatched where the virtual
  /// makespan must be reproducible run-to-run (eval_cost_s charges
  /// virtual time per reported evaluation).
  SoaRoute soa_route = SoaRoute::kAuto;
  std::uint64_t seed = 1;

  /// Per-rank scheme; demes may run different reproductive loops.
  std::function<std::unique_ptr<EvolutionScheme<G>>(int rank)> make_scheme;
  /// Random genome factory.
  std::function<G(Rng&)> make_genome;
  /// Optional event sink: each rank emits per-generation stats and one
  /// migration event per outgoing packet (source/dest/policy), stamped with
  /// transport time.  Null (default) costs one branch per site.
  obs::Tracer trace{};
};

namespace detail {
inline constexpr int kMigrantTag = 1;
/// "A rank reached the target fitness": every rank stops as soon as it sees
/// this (between generations or while blocked on migration).
inline constexpr int kStopTag = 2;
/// "This rank exhausted its budget and exits": receivers stop *expecting its
/// migrant packets* but keep evolving their own budget.
inline constexpr int kQuitTag = 3;

template <class G>
[[nodiscard]] std::vector<std::uint8_t> pack_migrants(
    const std::vector<Individual<G>>& migrants) {
  comm::ByteWriter w;
  w.write<std::uint32_t>(static_cast<std::uint32_t>(migrants.size()));
  for (const auto& m : migrants) comm::serialize(w, m);
  return std::move(w).take();
}

template <class G>
[[nodiscard]] std::vector<Individual<G>> unpack_migrants(
    const std::vector<std::uint8_t>& bytes) {
  comm::ByteReader r(bytes);
  const auto n = r.read<std::uint32_t>();
  std::vector<Individual<G>> out(n);
  for (auto& m : out) comm::deserialize(r, m);
  return out;
}
}  // namespace detail

/// The per-rank process body.  Call from a cluster's process lambda:
///
///   cluster.run([&](comm::Transport& t) {
///     auto report = run_island_rank(t, problem, config);
///     ...collect report (thread-safe container indexed by t.rank())...
///   });
template <class G>
DemeReport<G> run_island_rank(comm::Transport& t, const Problem<G>& problem,
                              const DistributedIslandConfig<G>& cfg) {
  const int rank = t.rank();
  const std::size_t deme = static_cast<std::size_t>(rank);
  Rng rng = Rng(cfg.seed).split(static_cast<std::uint64_t>(rank));

  // In-neighbors: whose migrant packets to expect per epoch in sync mode.
  // Entries are cleared when the neighbour announces it has quit.
  std::vector<std::uint8_t> in_neighbor(cfg.topology.num_demes(), 0);
  for (std::size_t d = 0; d < cfg.topology.num_demes(); ++d)
    for (std::size_t dst : cfg.topology.neighbors_out(d))
      if (dst == deme) in_neighbor[d] = 1;
  auto in_degree = [&] {
    std::size_t n = 0;
    for (auto v : in_neighbor) n += v;
    return n;
  };

  auto scheme = cfg.make_scheme(rank);
  auto pop = Population<G>::random(cfg.deme_size, cfg.make_genome, rng);
  pop.set_soa_route(cfg.soa_route);

  DemeReport<G> report;
  report.evaluations += pop.evaluate_all(problem);
  t.compute(static_cast<double>(report.evaluations) * cfg.eval_cost_s);

  bool announced = false;
  auto announce = [&](int tag) {
    if (announced) return;
    announced = true;
    for (int r = 0; r < t.world_size(); ++r)
      if (r != rank) t.send(r, tag, {});
  };
  auto announce_stop = [&] { announce(detail::kStopTag); };

  auto target_hit = [&] {
    return cfg.stop.target_reached(pop.best_fitness());
  };

  if (target_hit()) {
    report.reached_target = true;
    announce_stop();
    report.best = pop.best();
    return report;
  }

  bool stop_now = false;
  obs::GenerationProbe<G> probe(cfg.trace, rank);
  while (!stop_now && report.generations < cfg.stop.max_generations &&
         report.evaluations < cfg.stop.max_evaluations) {
    const std::size_t evals = scheme->step(pop, problem, rng);
    report.evaluations += evals;
    ++report.generations;
    t.compute(static_cast<double>(evals) * cfg.eval_cost_s);
    if (cfg.trace) {
      cfg.trace.evaluation_batch(rank, t.now(), evals);
      const auto [worst_i, best_i] = pop.minmax_indices();
      cfg.trace.gen_stats(rank, t.now(), report.generations,
                          report.evaluations, pop[best_i].fitness,
                          pop.mean_fitness(), pop[worst_i].fitness);
      probe.observe(pop, t.now(), report.generations, evals);
    }

    if (target_hit()) {
      report.reached_target = true;
      announce_stop();
      break;
    }

    // Peer control messages are observed between generations.
    while (auto ctl = t.try_recv(comm::Transport::kAnySource, detail::kStopTag)) {
      report.stopped_by_peer = true;
      stop_now = true;
      break;
    }
    while (auto ctl = t.try_recv(comm::Transport::kAnySource, detail::kQuitTag))
      in_neighbor[static_cast<std::size_t>(ctl->source)] = 0;
    if (stop_now) break;

    if (!cfg.policy.enabled() ||
        report.generations % cfg.policy.interval != 0)
      continue;

    // --- Migration epoch ---------------------------------------------------
    for (std::size_t dst : cfg.topology.neighbors_out(deme)) {
      auto migrants = select_migrants(pop, cfg.policy, rng);
      const double t0 = t.now();
      const std::size_t n_migrants = migrants.size();
      const std::uint64_t id = t.send(static_cast<int>(dst),
                                      detail::kMigrantTag,
                                      detail::pack_migrants(migrants));
      cfg.trace.migration(rank, t0, static_cast<int>(dst), n_migrants,
                          to_string(cfg.policy.selection), id);
    }

    if (cfg.async) {
      // Integrate whatever has arrived; never wait.
      while (auto msg =
                 t.try_recv(comm::Transport::kAnySource, detail::kMigrantTag)) {
        auto migrants = detail::unpack_migrants<G>(msg->payload);
        cfg.trace.mark(rank, t.now(), "migrants_integrated", msg->source,
                       migrants.size(), msg->msg_id);
        integrate_migrants(pop, migrants, cfg.policy, rng);
      }
    } else {
      // Block until one packet per still-active in-neighbor arrives (or a
      // stop/quit/shutdown).
      std::size_t received = 0;
      while (received < in_degree() && !stop_now) {
        auto msg = t.recv(comm::Transport::kAnySource, comm::Transport::kAnyTag);
        if (!msg) {
          stop_now = true;  // transport shut down
          break;
        }
        if (msg->tag == detail::kStopTag) {
          report.stopped_by_peer = true;
          stop_now = true;
          break;
        }
        if (msg->tag == detail::kQuitTag) {
          in_neighbor[static_cast<std::size_t>(msg->source)] = 0;
          continue;
        }
        auto migrants = detail::unpack_migrants<G>(msg->payload);
        cfg.trace.mark(rank, t.now(), "migrants_integrated", msg->source,
                       migrants.size(), msg->msg_id);
        integrate_migrants(pop, migrants, cfg.policy, rng);
        ++received;
      }
    }

    if (target_hit()) {
      report.reached_target = true;
      announce_stop();
      break;
    }
  }

  // Leaving without a target hit (budget exhausted, peer stop, shutdown):
  // tell the others not to expect our migrants, but let them finish their
  // own budgets.
  announce(detail::kQuitTag);
  report.best = pop.best();
  return report;
}

}  // namespace pga
