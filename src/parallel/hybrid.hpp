#pragma once
// Hybrid parallel GA: islands of master-slave groups.
//
// The survey's computing-trends section describes the model that emerged
// with clusters of SMP machines: "a centralized model within each SMP
// machine, but running under a distributed model within machines in the
// cluster".  Here the world's ranks are split into contiguous groups; the
// first rank of each group is the *leader*, which runs one island deme
// (selection/variation/replacement) and farms fitness evaluations out to
// its group's remaining ranks (the SMP cores).  Leaders migrate individuals
// among themselves along an inter-group topology (the cluster network).
//
// The run is budget-driven (fixed generations), matching how the hybrid
// model is benchmarked in E15.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/evolution.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "obs/events.hpp"
#include "parallel/migration.hpp"
#include "parallel/topology.hpp"

namespace pga {

template <class G>
struct HybridConfig {
  /// Number of SMP groups; world_size must be divisible into contiguous
  /// groups (remainder ranks join the last group).
  std::size_t groups = 2;
  Topology topology = Topology::ring(2);  ///< over groups
  MigrationPolicy policy{};
  std::size_t deme_size = 32;
  std::size_t generations = 50;
  std::size_t elitism = 1;
  Operators<G> ops{};
  std::size_t chunk_size = 4;
  double eval_cost_s = 0.0;
  std::uint64_t seed = 1;
  std::function<G(Rng&)> make_genome;
  /// Optional event sink: slaves emit per-chunk evaluation spans; leaders
  /// emit per-generation stats plus correlated dispatch/result marks and
  /// migration events — the same conventions as the master-slave and
  /// distributed-island engines, so one causal profiler reads all three.
  obs::Tracer trace{};
};

template <class G>
struct HybridReport {
  bool is_leader = false;
  Individual<G> best{};     ///< leader only
  std::size_t generations = 0;
  std::size_t evaluations = 0;  ///< evaluations this rank *performed*
};

namespace hybrid_detail {
inline constexpr int kWorkTag = 30;
inline constexpr int kResultTag = 31;
inline constexpr int kStopTag = 32;
inline constexpr int kMigrantTag = 33;

/// Group id of a rank under contiguous splitting.
[[nodiscard]] inline std::size_t group_of(int rank, int world,
                                          std::size_t groups) {
  const std::size_t per = static_cast<std::size_t>(world) / groups;
  const std::size_t g = static_cast<std::size_t>(rank) / std::max<std::size_t>(per, 1);
  return std::min(g, groups - 1);
}

/// First (leader) rank of a group.
[[nodiscard]] inline int leader_of(std::size_t group, int world,
                                   std::size_t groups) {
  const std::size_t per = static_cast<std::size_t>(world) / groups;
  return static_cast<int>(group * per);
}
}  // namespace hybrid_detail

/// Per-rank body of the hybrid model.
template <class G>
HybridReport<G> run_hybrid_rank(comm::Transport& t, const Problem<G>& problem,
                                const HybridConfig<G>& cfg) {
  namespace hd = hybrid_detail;
  const int rank = t.rank();
  const int world = t.world_size();
  if (static_cast<std::size_t>(world) < cfg.groups)
    throw std::invalid_argument("world smaller than group count");
  if (cfg.topology.num_demes() != cfg.groups)
    throw std::invalid_argument("topology size != group count");

  const std::size_t my_group = hd::group_of(rank, world, cfg.groups);
  const int my_leader = hd::leader_of(my_group, world, cfg.groups);

  HybridReport<G> report;

  // ---- Slave role ----------------------------------------------------------
  if (rank != my_leader) {
    for (;;) {
      auto msg = t.recv(my_leader, comm::Transport::kAnyTag);
      if (!msg || msg->tag == hd::kStopTag) return report;
      comm::ByteReader r(msg->payload);
      const auto count = r.read<std::uint32_t>();
      cfg.trace.span_begin(rank, t.now(), "eval_chunk");
      cfg.trace.evaluation_batch(rank, t.now(), count, "eval_chunk");
      comm::ByteWriter reply;
      reply.write<std::uint32_t>(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto id = r.read<std::uint32_t>();
        G genome;
        comm::deserialize(r, genome);
        t.compute(cfg.eval_cost_s);
        ++report.evaluations;
        reply.write<std::uint32_t>(id);
        reply.write<double>(problem.fitness(genome));
      }
      cfg.trace.span_end(rank, t.now(), "eval_chunk");
      t.send(my_leader, hd::kResultTag, std::move(reply).take());
    }
  }

  // ---- Leader role ----------------------------------------------------------
  report.is_leader = true;
  Rng rng = Rng(cfg.seed).split(my_group);

  // My group's slave ranks.
  std::vector<int> slaves;
  for (int r = 0; r < world; ++r)
    if (r != rank && hd::group_of(r, world, cfg.groups) == my_group)
      slaves.push_back(r);

  // In-neighbor count for synchronous migration between leaders.
  std::size_t in_degree = 0;
  for (std::size_t g = 0; g < cfg.groups; ++g)
    for (std::size_t dst : cfg.topology.neighbors_out(g))
      if (dst == my_group) ++in_degree;

  // Distributed (or local) batch evaluation.
  auto evaluate_batch = [&](std::vector<Individual<G>>& batch) {
    std::vector<std::uint32_t> todo;
    for (std::uint32_t i = 0; i < batch.size(); ++i)
      if (!batch[static_cast<std::size_t>(i)].evaluated) todo.push_back(i);
    if (todo.empty()) return;
    if (slaves.empty()) {
      for (auto i : todo) {
        auto& ind = batch[static_cast<std::size_t>(i)];
        t.compute(cfg.eval_cost_s);
        ind.fitness = problem.fitness(ind.genome);
        ind.evaluated = true;
        ++report.evaluations;
      }
      return;
    }
    // Deal chunks round-robin, then collect.
    std::size_t sent_chunks = 0;
    std::size_t next_slave = 0;
    for (std::size_t i = 0; i < todo.size(); i += cfg.chunk_size) {
      comm::ByteWriter w;
      const std::size_t end = std::min(i + cfg.chunk_size, todo.size());
      w.write<std::uint32_t>(static_cast<std::uint32_t>(end - i));
      for (std::size_t k = i; k < end; ++k) {
        w.write<std::uint32_t>(todo[k]);
        comm::serialize(w, batch[todo[k]].genome);
      }
      const double t0 = t.now();
      const std::uint64_t id =
          t.send(slaves[next_slave], hd::kWorkTag, std::move(w).take());
      cfg.trace.mark(rank, t0, "dispatch", slaves[next_slave], end - i, id);
      next_slave = (next_slave + 1) % slaves.size();
      ++sent_chunks;
    }
    for (std::size_t c = 0; c < sent_chunks; ++c) {
      auto msg = t.recv(comm::Transport::kAnySource, hd::kResultTag);
      if (!msg) return;  // transport shut down
      comm::ByteReader r(msg->payload);
      const auto count = r.read<std::uint32_t>();
      cfg.trace.mark(rank, t.now(), "result", msg->source, count,
                     msg->msg_id);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto id = r.read<std::uint32_t>();
        auto& ind = batch[id];
        ind.fitness = r.read<double>();
        ind.evaluated = true;
      }
    }
  };

  // Initial deme.
  std::vector<Individual<G>> members;
  members.reserve(cfg.deme_size);
  for (std::size_t i = 0; i < cfg.deme_size; ++i)
    members.emplace_back(cfg.make_genome(rng));
  evaluate_batch(members);
  Population<G> pop(std::move(members));

  for (std::size_t gen = 1; gen <= cfg.generations; ++gen) {
    // Variation (as in the generational scheme, evaluation deferred).
    const auto fitness = pop.fitness_values();
    const std::size_t offspring_count =
        cfg.deme_size > cfg.elitism ? cfg.deme_size - cfg.elitism : 1;
    std::vector<Individual<G>> offspring;
    offspring.reserve(offspring_count);
    while (offspring.size() < offspring_count) {
      const std::size_t i = cfg.ops.select(fitness, rng);
      const std::size_t j = cfg.ops.select(fitness, rng);
      G c1 = pop[i].genome, c2 = pop[j].genome;
      if (rng.bernoulli(cfg.ops.crossover_rate)) {
        auto [a, b] = cfg.ops.cross(pop[i].genome, pop[j].genome, rng);
        c1 = std::move(a);
        c2 = std::move(b);
      }
      cfg.ops.mutate(c1, rng);
      offspring.emplace_back(std::move(c1));
      if (offspring.size() < offspring_count) {
        cfg.ops.mutate(c2, rng);
        offspring.emplace_back(std::move(c2));
      }
    }
    evaluate_batch(offspring);

    pop.sort_descending();
    std::vector<Individual<G>> next;
    next.reserve(cfg.deme_size);
    for (std::size_t e = 0; e < cfg.elitism && e < pop.size(); ++e)
      next.push_back(pop[e]);
    for (auto& child : offspring) next.push_back(std::move(child));
    pop = Population<G>(std::move(next));
    ++report.generations;
    const auto [worst_i, best_i] = pop.minmax_indices();
    cfg.trace.gen_stats(rank, t.now(), report.generations, report.evaluations,
                        pop[best_i].fitness, pop.mean_fitness(),
                        pop[worst_i].fitness);

    // Inter-group migration (leaders only, synchronous).
    if (cfg.policy.enabled() && gen % cfg.policy.interval == 0) {
      for (std::size_t dst : cfg.topology.neighbors_out(my_group)) {
        auto migrants = select_migrants(pop, cfg.policy, rng);
        comm::ByteWriter w;
        w.write<std::uint32_t>(static_cast<std::uint32_t>(migrants.size()));
        for (const auto& m : migrants) comm::serialize(w, m);
        const double t0 = t.now();
        const std::uint64_t id =
            t.send(hd::leader_of(dst, world, cfg.groups), hd::kMigrantTag,
                   std::move(w).take());
        cfg.trace.migration(rank, t0,
                            hd::leader_of(dst, world, cfg.groups),
                            migrants.size(), to_string(cfg.policy.selection),
                            id);
      }
      std::size_t received = 0;
      while (received < in_degree) {
        auto msg = t.recv(comm::Transport::kAnySource, hd::kMigrantTag);
        if (!msg) break;
        comm::ByteReader r(msg->payload);
        const auto count = r.read<std::uint32_t>();
        cfg.trace.mark(rank, t.now(), "migrants_integrated", msg->source,
                       count, msg->msg_id);
        std::vector<Individual<G>> immigrants(count);
        for (auto& m : immigrants) comm::deserialize(r, m);
        integrate_migrants(pop, immigrants, cfg.policy, rng);
        ++received;
      }
    }
  }

  // Release group slaves.
  for (int s : slaves) t.send(s, hd::kStopTag, {});
  report.best = pop.best();
  return report;
}

}  // namespace pga
