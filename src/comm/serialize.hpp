#pragma once
// Minimal byte-level serialization for messages between ranks.
//
// The wire format is the library's own (little-endian, length-prefixed
// containers); both transports (threads and the simulated cluster) move the
// same byte vectors, so a model debugged in-process runs unchanged on the
// simulator.  Overloads cover the trivially-copyable scalars, std::vector,
// std::string, the four genome types and Individual<G>.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/genome.hpp"
#include "core/population.hpp"

namespace pga::comm {

class ByteWriter {
 public:
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <class T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T read() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> read_vector() {
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    require(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] std::string read_string() {
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::out_of_range("ByteReader: truncated message");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Genome (de)serialization
// ---------------------------------------------------------------------------

inline void serialize(ByteWriter& w, const BitString& g) {
  w.write_vector(g.bits);
}
inline void deserialize(ByteReader& r, BitString& g) {
  g.bits = r.read_vector<std::uint8_t>();
}

inline void serialize(ByteWriter& w, const RealVector& g) {
  w.write_vector(g.values);
}
inline void deserialize(ByteReader& r, RealVector& g) {
  g.values = r.read_vector<double>();
}

inline void serialize(ByteWriter& w, const IntVector& g) {
  w.write_vector(g.values);
}
inline void deserialize(ByteReader& r, IntVector& g) {
  g.values = r.read_vector<int>();
}

inline void serialize(ByteWriter& w, const Permutation& g) {
  w.write_vector(g.order);
}
inline void deserialize(ByteReader& r, Permutation& g) {
  g.order = r.read_vector<std::uint32_t>();
}

template <class G>
void serialize(ByteWriter& w, const Individual<G>& ind) {
  serialize(w, ind.genome);
  w.write(ind.fitness);
  w.write<std::uint8_t>(ind.evaluated ? 1 : 0);
}

template <class G>
void deserialize(ByteReader& r, Individual<G>& ind) {
  deserialize(r, ind.genome);
  ind.fitness = r.read<double>();
  ind.evaluated = r.read<std::uint8_t>() != 0;
}

/// Packs any serializable value into a fresh byte vector.
template <class T>
[[nodiscard]] std::vector<std::uint8_t> pack(const T& value) {
  ByteWriter w;
  serialize(w, value);
  return std::move(w).take();
}

/// Unpacks a value of type T from bytes (must consume them exactly).
template <class T>
[[nodiscard]] T unpack(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  T value;
  deserialize(r, value);
  return value;
}

}  // namespace pga::comm
