#pragma once
// The message-passing abstraction every parallel model is written against.
//
// The interface is a deliberately small MPI subset (point-to-point send,
// blocking/non-blocking/timed receive, wildcards) plus `compute(seconds)`,
// which declares computation cost so the simulated cluster can account for
// it.  Two implementations exist:
//
//   * comm::InprocCluster  — real std::thread ranks, real blocking queues;
//     proves the algorithms are genuinely message-driven and is what a
//     multicore machine runs.
//   * sim::SimCluster      — cooperative, deterministic virtual-time
//     execution with a network cost model and failure injection; produces
//     the timing axes for every speedup experiment (this container has one
//     core, so wall-clock speedup is reconstructed from virtual time — see
//     DESIGN.md §2).
//
// Failure semantics: when a rank is killed (failure injection), its next
// transport call throws NodeFailure, which the process runner catches at the
// rank boundary.  Sends to dead ranks vanish (a network does not bounce UDP);
// survivors observe the death only as silence, which is exactly what the
// fault-tolerant master-slave model (Gagné 2003) must cope with.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace pga::comm {

struct Message {
  int source = -1;
  int tag = 0;
  /// Per-run id assigned by the transport at send time (first send gets 1; 0
  /// is reserved for "uncorrelated").  The id a `send` returns and the id on
  /// the delivered Message are the same value, which is what lets the
  /// observability layer (obs/causal.hpp) pair a kMessageSent event with the
  /// kMessageRecv that observed its arrival.
  std::uint64_t msg_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Thrown inside a rank's process function when failure injection kills it.
class NodeFailure : public std::runtime_error {
 public:
  explicit NodeFailure(int rank)
      : std::runtime_error("node killed by failure injection"), rank_(rank) {}
  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

class Transport {
 public:
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;

  virtual ~Transport() = default;

  [[nodiscard]] virtual int rank() const noexcept = 0;
  [[nodiscard]] virtual int world_size() const noexcept = 0;

  /// Queues `payload` for rank `dest`.  Never blocks (buffered send).
  /// Returns the message's per-run id (never 0; unique across ranks and
  /// monotonically increasing per sender — minted from the sender's own send
  /// index so a deterministic protocol assigns identical ids on every run),
  /// which the delivered Message carries as `msg_id`.  Sends to dead ranks
  /// still consume and return an id — the message vanished, but the send
  /// happened.
  virtual std::uint64_t send(int dest, int tag,
                             std::vector<std::uint8_t> payload) = 0;

  /// Blocking receive with optional source/tag wildcards.  Returns nullopt
  /// only when the transport has shut down (e.g. every possible sender has
  /// terminated), so loops can exit cleanly instead of deadlocking.
  [[nodiscard]] virtual std::optional<Message> recv(int source = kAnySource,
                                                    int tag = kAnyTag) = 0;

  /// Non-blocking receive.
  [[nodiscard]] virtual std::optional<Message> try_recv(int source = kAnySource,
                                                        int tag = kAnyTag) = 0;

  /// Receive with a timeout (virtual seconds on the simulator, wall seconds
  /// in-process).  nullopt on timeout or shutdown.
  [[nodiscard]] virtual std::optional<Message> recv_timeout(
      double seconds, int source = kAnySource, int tag = kAnyTag) = 0;

  /// Declares `seconds` of computation at this rank's nominal speed.  The
  /// simulator advances the rank's virtual clock (scaled by the node's speed
  /// factor); the in-process transport only records it.
  virtual void compute(double seconds) = 0;

  /// Current time: virtual seconds (simulator) or wall seconds since launch.
  [[nodiscard]] virtual double now() const = 0;
};

}  // namespace pga::comm
