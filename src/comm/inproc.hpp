#pragma once
// In-process transport: each rank is a real std::thread, mailboxes are
// mutex/condvar queues.  This is the "SMP machine" execution mode from the
// survey's §3.3 (lightweight processes on shared memory) and the correctness
// substrate for every parallel model's tests.

#include <functional>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace pga::comm {

/// Launches N ranks as threads and runs a process function on each.
class InprocCluster {
 public:
  explicit InprocCluster(int num_ranks);

  struct RankReport {
    bool completed = false;        ///< process returned normally
    std::string error;             ///< exception text if it threw
    double declared_compute = 0.0; ///< total seconds passed to compute()
  };

  /// Runs `process(transport)` on every rank concurrently and joins.
  /// Exceptions are caught at the rank boundary and reported, never
  /// propagated across threads.
  std::vector<RankReport> run(
      const std::function<void(Transport&)>& process);

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

 private:
  int num_ranks_;
};

}  // namespace pga::comm
