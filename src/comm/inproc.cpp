#include "comm/inproc.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace pga::comm {

namespace {

using Clock = std::chrono::steady_clock;

/// Shared state for one run(): mailboxes plus the count of still-active
/// ranks, which lets blocking receives terminate instead of deadlocking once
/// every possible sender has exited.
struct World {
  explicit World(int n) : mailboxes(static_cast<std::size_t>(n)), active(n) {}

  struct Box {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<Box> mailboxes;
  std::atomic<int> active;
  Clock::time_point start = Clock::now();

  void rank_done() {
    active.fetch_sub(1, std::memory_order_acq_rel);
    // Wake every blocked receiver so it can re-check the shutdown condition.
    for (auto& box : mailboxes) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.cv.notify_all();
    }
  }
};

[[nodiscard]] bool matches(const Message& m, int source, int tag) {
  return (source == Transport::kAnySource || m.source == source) &&
         (tag == Transport::kAnyTag || m.tag == tag);
}

/// Removes and returns the first matching message, if any.
[[nodiscard]] std::optional<Message> take_matching(std::deque<Message>& queue,
                                                   int source, int tag) {
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

class ThreadTransport final : public Transport {
 public:
  ThreadTransport(World& world, int rank, int size)
      : world_(world), rank_(rank), size_(size) {}

  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int world_size() const noexcept override { return size_; }

  std::uint64_t send(int dest, int tag,
                     std::vector<std::uint8_t> payload) override {
    // Sender-minted (send index, rank) id: unique across ranks, monotone per
    // sender, 1-based (0 = uncorrelated), and — unlike a shared counter — a
    // pure function of each rank's own send count, so id assignment is
    // repeatable whenever the protocol itself is.
    const std::uint64_t id =
        next_send_++ * static_cast<std::uint64_t>(size_) +
        static_cast<std::uint64_t>(rank_) + 1;
    auto& box = world_.mailboxes[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(Message{rank_, tag, id, std::move(payload)});
    }
    box.cv.notify_all();
    return id;
  }

  [[nodiscard]] std::optional<Message> recv(int source, int tag) override {
    auto& box = world_.mailboxes[static_cast<std::size_t>(rank_)];
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      if (auto m = take_matching(box.queue, source, tag)) return m;
      // All other ranks done and nothing queued: communication is over.
      if (world_.active.load(std::memory_order_acquire) <= 1)
        return std::nullopt;
      box.cv.wait(lock);
    }
  }

  [[nodiscard]] std::optional<Message> try_recv(int source, int tag) override {
    auto& box = world_.mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lock(box.mutex);
    return take_matching(box.queue, source, tag);
  }

  [[nodiscard]] std::optional<Message> recv_timeout(double seconds, int source,
                                                    int tag) override {
    auto& box = world_.mailboxes[static_cast<std::size_t>(rank_)];
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      if (auto m = take_matching(box.queue, source, tag)) return m;
      if (world_.active.load(std::memory_order_acquire) <= 1)
        return std::nullopt;
      if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        return take_matching(box.queue, source, tag);
      }
    }
  }

  void compute(double seconds) override { declared_compute_ += seconds; }

  [[nodiscard]] double now() const override {
    return std::chrono::duration<double>(Clock::now() - world_.start).count();
  }

  [[nodiscard]] double declared_compute() const noexcept {
    return declared_compute_;
  }

 private:
  World& world_;
  int rank_;
  int size_;
  std::uint64_t next_send_ = 0;  ///< this rank's 0-based send index
  double declared_compute_ = 0.0;
};

}  // namespace

InprocCluster::InprocCluster(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1)
    throw std::invalid_argument("InprocCluster needs at least one rank");
}

std::vector<InprocCluster::RankReport> InprocCluster::run(
    const std::function<void(Transport&)>& process) {
  World world(num_ranks_);
  std::vector<RankReport> reports(static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));

  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      ThreadTransport transport(world, r, num_ranks_);
      auto& report = reports[static_cast<std::size_t>(r)];
      try {
        process(transport);
        report.completed = true;
      } catch (const std::exception& e) {
        report.error = e.what();
      } catch (...) {
        report.error = "unknown exception";
      }
      report.declared_compute = transport.declared_compute();
      world.rank_done();
    });
  }
  for (auto& t : threads) t.join();
  return reports;
}

}  // namespace pga::comm
