#pragma once
// Collective operations layered on point-to-point messaging, the way MPI
// collectives are specified: every rank in the world calls the same function
// with the same root/tag, and the collective completes when all have
// participated.  Implemented portably over the Transport interface so they
// run identically on threads and on the simulated cluster (where their cost
// shows up in virtual time, reproducing the synchronization penalties the
// sync-vs-async experiments measure).
//
// Tags: collectives use caller-provided tags; callers must not reuse a tag
// for overlapping collectives (same discipline as MPI communicators).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "comm/serialize.hpp"
#include "comm/transport.hpp"

namespace pga::comm {

/// Thrown when a peer died or the transport shut down mid-collective.
class CollectiveAborted : public std::runtime_error {
 public:
  explicit CollectiveAborted(const char* what) : std::runtime_error(what) {}
};

namespace detail {
[[nodiscard]] inline Message must_recv(Transport& t, int source, int tag) {
  auto m = t.recv(source, tag);
  if (!m) throw CollectiveAborted("peer terminated during collective");
  return std::move(*m);
}
}  // namespace detail

/// Barrier: centralized two-phase (gather-to-root then release).  O(P)
/// messages, which is what a master-coordinated cluster does.
inline void barrier(Transport& t, int tag) {
  constexpr int kRoot = 0;
  if (t.rank() == kRoot) {
    for (int r = 1; r < t.world_size(); ++r)
      (void)detail::must_recv(t, Transport::kAnySource, tag);
    for (int r = 1; r < t.world_size(); ++r) t.send(r, tag, {});
  } else {
    t.send(kRoot, tag, {});
    (void)detail::must_recv(t, kRoot, tag);
  }
}

/// Broadcast `bytes` from `root` to all ranks (flat fan-out).
inline std::vector<std::uint8_t> broadcast(Transport& t, int root, int tag,
                                           std::vector<std::uint8_t> bytes) {
  if (t.rank() == root) {
    for (int r = 0; r < t.world_size(); ++r)
      if (r != root) t.send(r, tag, bytes);
    return bytes;
  }
  return detail::must_recv(t, root, tag).payload;
}

/// Gather: every rank contributes a byte vector; root receives all of them
/// indexed by source rank.  Non-roots get an empty result.
inline std::vector<std::vector<std::uint8_t>> gather(
    Transport& t, int root, int tag, std::vector<std::uint8_t> contribution) {
  if (t.rank() != root) {
    t.send(root, tag, std::move(contribution));
    return {};
  }
  std::vector<std::vector<std::uint8_t>> parts(
      static_cast<std::size_t>(t.world_size()));
  parts[static_cast<std::size_t>(root)] = std::move(contribution);
  for (int i = 0; i < t.world_size() - 1; ++i) {
    auto m = detail::must_recv(t, Transport::kAnySource, tag);
    parts[static_cast<std::size_t>(m.source)] = std::move(m.payload);
  }
  return parts;
}

/// All-gather: gather to rank 0 then broadcast the concatenation.
inline std::vector<std::vector<std::uint8_t>> allgather(
    Transport& t, int tag, std::vector<std::uint8_t> contribution) {
  auto parts = gather(t, /*root=*/0, tag, std::move(contribution));
  // Root flattens with length prefixes, then broadcasts.
  std::vector<std::uint8_t> flat;
  if (t.rank() == 0) {
    ByteWriter w;
    w.write<std::uint64_t>(parts.size());
    for (const auto& p : parts) w.write_vector(p);
    flat = std::move(w).take();
  }
  flat = broadcast(t, /*root=*/0, tag, std::move(flat));
  ByteReader r(flat);
  const auto n = static_cast<std::size_t>(r.read<std::uint64_t>());
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.read_vector<std::uint8_t>());
  return out;
}

/// Reduce doubles with a binary op at `root` (flat; returns combined value at
/// root, 0.0 elsewhere).
inline double reduce(Transport& t, int root, int tag, double value,
                     const std::function<double(double, double)>& op) {
  ByteWriter w;
  w.write(value);
  auto parts = gather(t, root, tag, std::move(w).take());
  if (t.rank() != root) return 0.0;
  double acc = value;
  for (int r = 0; r < t.world_size(); ++r) {
    if (r == root) continue;
    ByteReader reader(parts[static_cast<std::size_t>(r)]);
    acc = op(acc, reader.read<double>());
  }
  return acc;
}

/// All-reduce: reduce at rank 0, broadcast the result.
inline double allreduce(Transport& t, int tag, double value,
                        const std::function<double(double, double)>& op) {
  const double at_root = reduce(t, /*root=*/0, tag, value, op);
  ByteWriter w;
  w.write(t.rank() == 0 ? at_root : 0.0);
  auto bytes = broadcast(t, /*root=*/0, tag, std::move(w).take());
  ByteReader r(bytes);
  return r.read<double>();
}

}  // namespace pga::comm
