#pragma once
// Photogrammetric camera-network design (Olague 2001, survey §4: "a system
// for placing cameras in order to satisfy a set of interrelated and
// competing constraints for three-dimensional objects").
//
// Synthetic substitute (DESIGN.md §2): the object is a cloud of surface
// points with outward normals on a sphere; K cameras sit on a viewing
// sphere, parameterized by (azimuth, elevation) each.  The objective mixes
// the competing criteria of the original: per-point visibility (a point
// counts when seen by >= 2 cameras from its front side), triangulation
// quality (convergence angles near 90 degrees between observing cameras),
// and a workspace constraint (cameras below minimum elevation are
// penalized).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <string>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga::workloads {

struct Vec3 {
  double x, y, z;

  [[nodiscard]] double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 minus(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0 ? Vec3{x / n, y / n, z / n} : *this;
  }
};

/// Surface point with outward normal.
struct SurfacePoint {
  Vec3 position;
  Vec3 normal;
};

/// Random points on a unit sphere (normal = position direction).
[[nodiscard]] inline std::vector<SurfacePoint> make_sphere_object(
    std::size_t points, Rng& rng) {
  std::vector<SurfacePoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Marsaglia sphere sampling.
    double a, b, s;
    do {
      a = rng.uniform(-1.0, 1.0);
      b = rng.uniform(-1.0, 1.0);
      s = a * a + b * b;
    } while (s >= 1.0);
    const double t = 2.0 * std::sqrt(1.0 - s);
    Vec3 p{a * t, b * t, 1.0 - 2.0 * s};
    out.push_back({p, p});
  }
  return out;
}

/// Camera-placement problem: genome = K x (azimuth in [0, 2pi), elevation in
/// [-pi/2, pi/2]) on a viewing sphere of `radius`.
class CameraPlacementProblem final : public Problem<RealVector> {
 public:
  CameraPlacementProblem(std::vector<SurfacePoint> object,
                         std::size_t num_cameras, double radius = 3.0,
                         double min_elevation = -0.2)
      : object_(std::move(object)),
        cameras_(num_cameras),
        radius_(radius),
        min_elevation_(min_elevation) {}

  [[nodiscard]] Bounds genome_bounds() const {
    Bounds b;
    b.lower.resize(cameras_ * 2);
    b.upper.resize(cameras_ * 2);
    for (std::size_t c = 0; c < cameras_; ++c) {
      b.lower[2 * c] = 0.0;
      b.upper[2 * c] = 2.0 * std::numbers::pi;
      b.lower[2 * c + 1] = -std::numbers::pi / 2.0;
      b.upper[2 * c + 1] = std::numbers::pi / 2.0;
    }
    return b;
  }

  [[nodiscard]] std::vector<Vec3> decode_cameras(const RealVector& g) const {
    std::vector<Vec3> cams;
    cams.reserve(cameras_);
    for (std::size_t c = 0; c < cameras_; ++c) {
      const double az = g[2 * c], el = g[2 * c + 1];
      cams.push_back({radius_ * std::cos(el) * std::cos(az),
                      radius_ * std::cos(el) * std::sin(az),
                      radius_ * std::sin(el)});
    }
    return cams;
  }

  /// Fraction of points observed by at least two front-side cameras whose
  /// viewing directions differ by a usable baseline (>= ~6 degrees) — two
  /// coincident cameras cannot triangulate.
  [[nodiscard]] double coverage(const RealVector& g) const {
    const auto cams = decode_cameras(g);
    std::size_t covered = 0;
    for (const auto& pt : object_)
      covered += best_convergence(pt, observers(pt, cams)) >= 0.1;
    return static_cast<double>(covered) / static_cast<double>(object_.size());
  }

  [[nodiscard]] double fitness(const RealVector& g) const override {
    const auto cams = decode_cameras(g);
    double score = 0.0;
    for (const auto& pt : object_) {
      const auto seen_by = observers(pt, cams);
      const double angle = best_convergence(pt, seen_by);
      if (angle < 0.1) continue;  // not triangulable (no usable baseline)
      // Quality peaks at 90 degrees convergence, falls to 0 at 0 or 180.
      const double quality = 1.0 - std::abs(angle - std::numbers::pi / 2.0) /
                                       (std::numbers::pi / 2.0);
      score += 1.0 + quality;  // visibility + triangulation terms
    }
    // Workspace constraint: cameras below the floor elevation are penalized.
    double penalty = 0.0;
    for (std::size_t c = 0; c < cameras_; ++c) {
      const double el = g[2 * c + 1];
      if (el < min_elevation_) penalty += 10.0 * (min_elevation_ - el);
    }
    return score / static_cast<double>(object_.size()) - penalty;
  }

  [[nodiscard]] std::string name() const override { return "camera-placement"; }
  [[nodiscard]] std::size_t num_cameras() const noexcept { return cameras_; }

 private:
  /// Largest pairwise convergence angle (radians) among observing cameras,
  /// capped at 90 degrees for the comparison; 0 when fewer than two observe.
  [[nodiscard]] double best_convergence(const SurfacePoint& pt,
                                        const std::vector<Vec3>& seen_by) const {
    double best = 0.0;
    for (std::size_t i = 0; i < seen_by.size(); ++i)
      for (std::size_t j = i + 1; j < seen_by.size(); ++j) {
        const Vec3 d1 = seen_by[i].minus(pt.position).normalized();
        const Vec3 d2 = seen_by[j].minus(pt.position).normalized();
        const double angle = std::acos(std::clamp(d1.dot(d2), -1.0, 1.0));
        // Prefer the pair whose quality is highest (closest to 90 deg).
        if (std::abs(angle - std::numbers::pi / 2.0) <
            std::abs(best - std::numbers::pi / 2.0))
          best = angle;
      }
    return best;
  }

  /// Positions of cameras that see the point from its front hemisphere.
  [[nodiscard]] std::vector<Vec3> observers(const SurfacePoint& pt,
                                            const std::vector<Vec3>& cams) const {
    std::vector<Vec3> out;
    for (const auto& cam : cams) {
      const Vec3 to_cam = cam.minus(pt.position).normalized();
      if (to_cam.dot(pt.normal) > 0.2) out.push_back(cam);  // front side
    }
    return out;
  }

  std::vector<SurfacePoint> object_;
  std::size_t cameras_;
  double radius_;
  double min_elevation_;
};

}  // namespace pga::workloads
