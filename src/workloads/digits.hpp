#pragma once
// Synthetic feature-selection workload (Moser & Murty 2000: very large-scale
// feature selection for hand-written digit classification with a distributed
// GA).
//
// We generate a class-conditional Gaussian dataset: K classes, D features of
// which only `informative` carry class signal; the rest are pure noise.  The
// wrapper fitness trains/evaluates a nearest-centroid classifier on the
// selected feature subset (bitmask genome) and subtracts a small per-feature
// penalty — so the GA must find the informative coordinates, exactly the
// structure of the original large-scale task.

#include <cstddef>
#include <string>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga::workloads {

struct DigitsDataset {
  std::size_t num_classes = 0;
  std::size_t num_features = 0;
  std::vector<std::vector<double>> samples;  ///< row-major feature vectors
  std::vector<std::size_t> labels;
  std::vector<std::size_t> informative;  ///< ground-truth signal features

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
};

/// Generates the dataset: each class has a prototype whose informative
/// coordinates are well separated; noise features are N(0,1) for all classes.
[[nodiscard]] DigitsDataset make_digits_dataset(std::size_t num_classes,
                                                std::size_t num_features,
                                                std::size_t informative,
                                                std::size_t samples_per_class,
                                                double noise_sigma, Rng& rng);

/// Nearest-centroid classification accuracy on the selected features
/// (leave-half-out: centroids from even samples, accuracy on odd samples).
[[nodiscard]] double nearest_centroid_accuracy(const DigitsDataset& data,
                                               const BitString& mask);

/// Wrapper feature-selection problem.  Fitness = holdout accuracy minus
/// `feature_penalty` per selected feature; an empty mask scores 0.
class FeatureSelectionProblem final : public Problem<BitString> {
 public:
  FeatureSelectionProblem(DigitsDataset data, double feature_penalty = 1e-3)
      : data_(std::move(data)), penalty_(feature_penalty) {}

  [[nodiscard]] double fitness(const BitString& mask) const override;
  [[nodiscard]] std::string name() const override { return "feature-selection"; }

  [[nodiscard]] const DigitsDataset& data() const noexcept { return data_; }
  [[nodiscard]] std::size_t num_features() const noexcept {
    return data_.num_features;
  }

 private:
  DigitsDataset data_;
  double penalty_;
};

}  // namespace pga::workloads
