#pragma once
// Neuro-genetic stock prediction workload (Kwon & Moon 2003).
//
// A synthetic regime-switching price series substitutes for market data
// (DESIGN.md §2): geometric returns with a latent drift that flips between a
// bull and a bear regime, so there *is* exploitable temporal structure.
// Technical indicators derived from the prices feed a small MLP whose
// weights are the GA genome (the paper's 2-D weight-matrix encoding maps to
// crossover::block_2d on a BitString, or directly to a RealVector).  Fitness
// is the trading return of the network's long/flat signal on a training
// window; EXPERIMENTS.md compares it against buy-and-hold on held-out data.

#include <cstddef>
#include <string>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga::workloads {

/// Synthetic daily close prices: regime-switching geometric Brownian motion.
[[nodiscard]] std::vector<double> make_price_series(std::size_t days,
                                                    double bull_drift,
                                                    double bear_drift,
                                                    double volatility,
                                                    double switch_prob,
                                                    Rng& rng);

/// Technical indicator matrix: one row per day (from `warmup` on), columns:
/// price/SMA(5)-1, price/SMA(20)-1, 5-day momentum, 10-day volatility,
/// RSI(14)-0.5.  All roughly centred on 0.
struct IndicatorSeries {
  std::size_t warmup = 0;                 ///< first day with valid indicators
  std::vector<std::vector<double>> rows;  ///< rows.size() == days - warmup

  [[nodiscard]] static constexpr std::size_t num_indicators() { return 5; }
};

[[nodiscard]] IndicatorSeries compute_indicators(
    const std::vector<double>& prices);

/// One-hidden-layer MLP with tanh activations; weights flattened as
/// [input x hidden | hidden bias | hidden x 1 | output bias].
class TradingMlp {
 public:
  TradingMlp(std::size_t inputs, std::size_t hidden)
      : inputs_(inputs), hidden_(hidden) {}

  [[nodiscard]] std::size_t num_weights() const noexcept {
    return inputs_ * hidden_ + hidden_ + hidden_ + 1;
  }

  /// Network output in (-1, 1); > 0 means "be long tomorrow".
  [[nodiscard]] double forward(const std::vector<double>& weights,
                               const std::vector<double>& inputs) const;

  [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }
  [[nodiscard]] std::size_t hidden() const noexcept { return hidden_; }

 private:
  std::size_t inputs_;
  std::size_t hidden_;
};

/// Simulates the long/flat strategy driven by the MLP over days
/// [first, last) of the indicator series; returns total compounded return
/// (1.0 = broke even).  `cost` is the per-trade proportional cost.
[[nodiscard]] double simulate_strategy(const TradingMlp& mlp,
                                       const std::vector<double>& weights,
                                       const std::vector<double>& prices,
                                       const IndicatorSeries& indicators,
                                       std::size_t first, std::size_t last,
                                       double cost = 0.0005);

/// Buy-and-hold return over the same day range (the paper's baseline).
[[nodiscard]] double buy_and_hold_return(const std::vector<double>& prices,
                                         const IndicatorSeries& indicators,
                                         std::size_t first, std::size_t last);

/// GA problem: genome = MLP weights (RealVector), fitness = training-window
/// strategy return.
class NeuroTradingProblem final : public Problem<RealVector> {
 public:
  NeuroTradingProblem(std::vector<double> prices, std::size_t hidden,
                      double train_fraction = 0.7);

  [[nodiscard]] double fitness(const RealVector& genome) const override;
  [[nodiscard]] std::string name() const override { return "neuro-trading"; }

  [[nodiscard]] const Bounds& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const TradingMlp& mlp() const noexcept { return mlp_; }

  /// Held-out evaluation of a genome (test-window strategy return).
  [[nodiscard]] double test_return(const RealVector& genome) const;
  /// Baselines over the two windows.
  [[nodiscard]] double train_buy_and_hold() const;
  [[nodiscard]] double test_buy_and_hold() const;

 private:
  std::vector<double> prices_;
  IndicatorSeries indicators_;
  TradingMlp mlp_;
  std::size_t split_;  ///< first test row
  Bounds bounds_;
};

}  // namespace pga::workloads
