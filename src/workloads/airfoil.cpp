#include "workloads/airfoil.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace pga::workloads {

namespace {
[[nodiscard]] double lerp(double lo, double hi, double t) {
  return lo + (hi - lo) * t;
}
[[nodiscard]] double deg2rad(double d) { return d * std::numbers::pi / 180.0; }
}  // namespace

AirfoilDesign AirfoilSurrogate::decode(const RealVector& g) {
  AirfoilDesign d;
  d.camber = lerp(0.0, 0.09, g[0]);
  d.camber_pos = lerp(0.2, 0.7, g[1]);
  d.thickness = lerp(0.06, 0.18, g[2]);
  d.alpha = lerp(-2.0, 8.0, g[3]);
  d.twist = lerp(-4.0, 4.0, g[4]);
  d.sweep = lerp(10.0, 40.0, g[5]);
  return d;
}

double AirfoilSurrogate::lift_to_drag(const AirfoilDesign& d) {
  // Thin-airfoil-flavoured lift: slope reduced by sweep, camber adds lift,
  // effective incidence includes twist.
  const double alpha_rad = deg2rad(d.alpha + 0.5 * d.twist);
  const double cos_sweep = std::cos(deg2rad(d.sweep));
  const double cl =
      2.0 * std::numbers::pi * cos_sweep *
      (alpha_rad + 2.0 * d.camber / std::max(d.camber_pos, 0.05));

  // Drag: profile (grows with thickness), induced (cl^2), and a transonic
  // drag-rise term that punishes thick/cambered sections at high lift —
  // swept wings delay it (the design trade-off of the original study).
  const double cd0 = 0.006 + 2.0 * d.thickness * d.thickness;
  const double induced = cl * cl / (std::numbers::pi * 7.0 * 0.85);
  const double critical = 0.75 + 0.3 * (1.0 - cos_sweep) - 0.6 * d.thickness -
                          0.8 * d.camber;
  const double excess = std::max(0.0, 0.72 + 0.12 * cl - critical);
  const double wave = 20.0 * excess * excess * excess;
  const double cd = cd0 + induced + wave;

  if (cl <= 0.0) return cl / cd;  // negative lift: strongly penalized ratio
  return cl / cd;
}

double AirfoilSurrogate::fitness(const RealVector& genome,
                                 std::size_t level) const {
  const auto design = decode(genome);
  double value = lift_to_drag(design);
  if (level > 0) {
    // Deterministic model error growing with the fidelity gap: a ripple over
    // the design space that shifts local optima without destroying the
    // global basin.
    const double amp = 0.8 * static_cast<double>(level);
    double phase = 0.0;
    for (std::size_t i = 0; i < genome.size(); ++i)
      phase += (static_cast<double>(i) + 2.0) * genome[i];
    value += amp * std::sin(7.0 * phase);
  }
  return value;
}

double AirfoilSurrogate::cost(std::size_t level) const {
  // Level 0 costs 1 unit; each coarser level is cost_ratio_ times cheaper.
  return std::pow(cost_ratio_, -static_cast<double>(level));
}

Bounds adapt_range(const Bounds& original, const Bounds& current,
                   const std::vector<Individual<RealVector>>& elite,
                   double shrink) {
  if (elite.empty()) return current;
  const std::size_t dims = original.size();
  Bounds next = current;
  for (std::size_t i = 0; i < dims; ++i) {
    // Center on the elite mean, shrink the current span.
    double mean = 0.0;
    for (const auto& ind : elite) mean += ind.genome[i];
    mean /= static_cast<double>(elite.size());
    const double half = 0.5 * shrink * current.span(i);
    next.lower[i] = std::max(original.lower[i], mean - half);
    next.upper[i] = std::min(original.upper[i], mean + half);
    if (next.upper[i] <= next.lower[i]) {  // degenerate: re-open slightly
      next.lower[i] = std::max(original.lower[i], mean - 1e-6);
      next.upper[i] = std::min(original.upper[i], mean + 1e-6);
    }
  }
  return next;
}

}  // namespace pga::workloads
