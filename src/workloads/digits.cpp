#include "workloads/digits.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pga::workloads {

DigitsDataset make_digits_dataset(std::size_t num_classes,
                                  std::size_t num_features,
                                  std::size_t informative,
                                  std::size_t samples_per_class,
                                  double noise_sigma, Rng& rng) {
  if (informative > num_features)
    throw std::invalid_argument("informative features exceed total features");
  DigitsDataset data;
  data.num_classes = num_classes;
  data.num_features = num_features;

  // Choose which coordinates carry signal.
  std::vector<std::uint8_t> is_informative(num_features, 0);
  while (data.informative.size() < informative) {
    const std::size_t f = rng.index(num_features);
    if (is_informative[f]) continue;
    is_informative[f] = 1;
    data.informative.push_back(f);
  }

  // Class prototypes: informative coordinates separated by ~3 sigma.
  std::vector<std::vector<double>> prototypes(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    prototypes[c].assign(num_features, 0.0);
    for (std::size_t f : data.informative)
      prototypes[c][f] = 3.0 * noise_sigma * rng.gaussian();
  }

  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s) {
      std::vector<double> x(num_features);
      for (std::size_t f = 0; f < num_features; ++f)
        x[f] = prototypes[c][f] + noise_sigma * rng.gaussian();
      data.samples.push_back(std::move(x));
      data.labels.push_back(c);
    }
  }
  return data;
}

double nearest_centroid_accuracy(const DigitsDataset& data,
                                 const BitString& mask) {
  if (mask.size() != data.num_features)
    throw std::invalid_argument("mask length != feature count");
  std::vector<std::size_t> selected;
  for (std::size_t f = 0; f < mask.size(); ++f)
    if (mask[f]) selected.push_back(f);
  if (selected.empty()) return 0.0;

  // Centroids from even-indexed samples.
  std::vector<std::vector<double>> centroid(
      data.num_classes, std::vector<double>(selected.size(), 0.0));
  std::vector<std::size_t> counts(data.num_classes, 0);
  for (std::size_t i = 0; i < data.size(); i += 2) {
    const std::size_t c = data.labels[i];
    for (std::size_t k = 0; k < selected.size(); ++k)
      centroid[c][k] += data.samples[i][selected[k]];
    ++counts[c];
  }
  for (std::size_t c = 0; c < data.num_classes; ++c) {
    if (counts[c] == 0) continue;
    for (auto& v : centroid[c]) v /= static_cast<double>(counts[c]);
  }

  // Accuracy on odd-indexed samples.
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 1; i < data.size(); i += 2) {
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < data.num_classes; ++c) {
      double d = 0.0;
      for (std::size_t k = 0; k < selected.size(); ++k) {
        const double diff = data.samples[i][selected[k]] - centroid[c][k];
        d += diff * diff;
      }
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    correct += (best_c == data.labels[i]);
    ++total;
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double FeatureSelectionProblem::fitness(const BitString& mask) const {
  const double accuracy = nearest_centroid_accuracy(data_, mask);
  return accuracy -
         penalty_ * static_cast<double>(mask.count_ones());
}

}  // namespace pga::workloads
