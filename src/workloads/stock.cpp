#include "workloads/stock.hpp"

#include <cmath>
#include <stdexcept>

namespace pga::workloads {

std::vector<double> make_price_series(std::size_t days, double bull_drift,
                                      double bear_drift, double volatility,
                                      double switch_prob, Rng& rng) {
  std::vector<double> prices;
  prices.reserve(days);
  double price = 100.0;
  bool bull = true;
  for (std::size_t d = 0; d < days; ++d) {
    prices.push_back(price);
    if (rng.bernoulli(switch_prob)) bull = !bull;
    const double drift = bull ? bull_drift : bear_drift;
    price *= std::exp(drift + volatility * rng.gaussian());
  }
  return prices;
}

IndicatorSeries compute_indicators(const std::vector<double>& prices) {
  constexpr std::size_t kWarmup = 20;
  if (prices.size() <= kWarmup + 2)
    throw std::invalid_argument("price series too short for indicators");
  IndicatorSeries out;
  out.warmup = kWarmup;

  auto sma = [&](std::size_t day, std::size_t window) {
    double s = 0.0;
    for (std::size_t i = day + 1 - window; i <= day; ++i) s += prices[i];
    return s / static_cast<double>(window);
  };

  for (std::size_t day = kWarmup; day < prices.size(); ++day) {
    std::vector<double> row(IndicatorSeries::num_indicators());
    row[0] = prices[day] / sma(day, 5) - 1.0;
    row[1] = prices[day] / sma(day, 20) - 1.0;
    row[2] = prices[day] / prices[day - 5] - 1.0;  // momentum
    // 10-day realized volatility of log returns.
    double var = 0.0;
    for (std::size_t i = day - 9; i <= day; ++i) {
      const double r = std::log(prices[i] / prices[i - 1]);
      var += r * r;
    }
    row[3] = std::sqrt(var / 10.0);
    // RSI(14) mapped to [-0.5, 0.5].
    double gains = 0.0, losses = 0.0;
    for (std::size_t i = day - 13; i <= day; ++i) {
      const double diff = prices[i] - prices[i - 1];
      if (diff > 0.0) gains += diff;
      else losses -= diff;
    }
    const double total = gains + losses;
    row[4] = (total > 0.0 ? gains / total : 0.5) - 0.5;
    out.rows.push_back(std::move(row));
  }
  return out;
}

double TradingMlp::forward(const std::vector<double>& weights,
                           const std::vector<double>& inputs) const {
  if (weights.size() != num_weights())
    throw std::invalid_argument("weight vector size mismatch");
  if (inputs.size() != inputs_)
    throw std::invalid_argument("input vector size mismatch");
  const double* w_ih = weights.data();
  const double* b_h = w_ih + inputs_ * hidden_;
  const double* w_ho = b_h + hidden_;
  const double b_o = *(w_ho + hidden_);

  double out = b_o;
  for (std::size_t h = 0; h < hidden_; ++h) {
    double a = b_h[h];
    for (std::size_t i = 0; i < inputs_; ++i)
      a += w_ih[h * inputs_ + i] * inputs[i];
    out += w_ho[h] * std::tanh(a);
  }
  return std::tanh(out);
}

double simulate_strategy(const TradingMlp& mlp,
                         const std::vector<double>& weights,
                         const std::vector<double>& prices,
                         const IndicatorSeries& indicators, std::size_t first,
                         std::size_t last, double cost) {
  double wealth = 1.0;
  bool long_position = false;
  for (std::size_t row = first; row + 1 < last; ++row) {
    const bool want_long = mlp.forward(weights, indicators.rows[row]) > 0.0;
    if (want_long != long_position) {
      wealth *= 1.0 - cost;  // trade at today's close
      long_position = want_long;
    }
    if (long_position) {
      const std::size_t day = indicators.warmup + row;
      wealth *= prices[day + 1] / prices[day];
    }
  }
  return wealth;
}

double buy_and_hold_return(const std::vector<double>& prices,
                           const IndicatorSeries& indicators,
                           std::size_t first, std::size_t last) {
  if (first + 1 >= last) return 1.0;
  const std::size_t d0 = indicators.warmup + first;
  const std::size_t d1 = indicators.warmup + last - 1;
  return prices[d1] / prices[d0];
}

NeuroTradingProblem::NeuroTradingProblem(std::vector<double> prices,
                                         std::size_t hidden,
                                         double train_fraction)
    : prices_(std::move(prices)),
      indicators_(compute_indicators(prices_)),
      mlp_(IndicatorSeries::num_indicators(), hidden),
      split_(static_cast<std::size_t>(
          train_fraction * static_cast<double>(indicators_.rows.size()))),
      bounds_(mlp_.num_weights(), -4.0, 4.0) {}

double NeuroTradingProblem::fitness(const RealVector& genome) const {
  return simulate_strategy(mlp_, genome.values, prices_, indicators_, 0,
                           split_);
}

double NeuroTradingProblem::test_return(const RealVector& genome) const {
  return simulate_strategy(mlp_, genome.values, prices_, indicators_, split_,
                           indicators_.rows.size());
}

double NeuroTradingProblem::train_buy_and_hold() const {
  return buy_and_hold_return(prices_, indicators_, 0, split_);
}

double NeuroTradingProblem::test_buy_and_hold() const {
  return buy_and_hold_return(prices_, indicators_, split_,
                             indicators_.rows.size());
}

}  // namespace pga::workloads
