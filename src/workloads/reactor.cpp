#include "workloads/reactor.hpp"

#include <algorithm>
#include <cmath>

namespace pga::workloads {

namespace {
constexpr double kFluxFloor = 0.55;      ///< minimum normalized thermal flux
constexpr double kModerationCap = 1.9;   ///< sub-moderation limit
constexpr double kCriticalityTol = 0.02; ///< |k_eff - 1| tolerance

[[nodiscard]] double enrichment_fraction(int step) {
  return 1.5 + 0.3 * static_cast<double>(step);  // percent U-235
}
}  // namespace

ReactorDesign ReactorProblem::decode(const RealVector& g) {
  ReactorDesign d{};
  for (int z = 0; z < 3; ++z) {
    const double v = g[static_cast<std::size_t>(z)] * 9.999;
    d.enrichment[z] = std::clamp(static_cast<int>(v), 0, 9);
  }
  d.fuel_radius = 0.4 + 0.2 * g[3];
  d.pitch = 1.0 + 0.6 * g[4];
  return d;
}

ReactorState ReactorProblem::evaluate_core(const ReactorDesign& d) {
  const double e0 = enrichment_fraction(d.enrichment[0]);  // inner zone
  const double e1 = enrichment_fraction(d.enrichment[1]);
  const double e2 = enrichment_fraction(d.enrichment[2]);  // outer zone

  // Zone powers: the inner zone sees the highest flux weighting; flatter
  // profiles need enrichment *increasing* outward (low-leakage loading).
  const double w0 = 1.35, w1 = 1.0, w2 = 0.62;
  const double p0 = w0 * e0, p1 = w1 * e1, p2 = w2 * e2;
  const double mean_p = (p0 + p1 + p2) / 3.0;
  const double peak = std::max({p0, p1, p2}) / mean_p;

  // Moderation ratio from lattice geometry.
  const double moderation =
      (d.pitch * d.pitch - 3.1416 * d.fuel_radius * d.fuel_radius) /
      (3.1416 * d.fuel_radius * d.fuel_radius);

  // k_eff: grows with mean enrichment and moderation (up to over-moderation).
  const double mean_e = (e0 + e1 + e2) / 3.0;
  const double mod_eff = 1.0 - 0.25 * (moderation - 1.4) * (moderation - 1.4);
  const double k_eff = 0.62 * mean_e * mod_eff / 1.55;

  // Thermal flux improves with moderation but drops with heavy absorption at
  // high enrichment.
  const double flux = 0.45 + 0.25 * std::min(moderation / 1.6, 1.3) -
                      0.03 * (mean_e - 2.5);

  return {peak, k_eff, flux, moderation};
}

bool ReactorProblem::feasible(const ReactorState& s) {
  return std::abs(s.k_eff - 1.0) <= kCriticalityTol &&
         s.thermal_flux >= kFluxFloor && s.moderation <= kModerationCap;
}

double ReactorProblem::objective(const RealVector& genome) const {
  return evaluate_core(decode(genome)).peak_factor;
}

double ReactorProblem::fitness(const RealVector& genome) const {
  const auto state = evaluate_core(decode(genome));
  double penalty = 0.0;
  // Quadratic exterior penalties, scaled so constraint violations always
  // dominate peak-factor gains.
  const double dk = std::max(0.0, std::abs(state.k_eff - 1.0) - kCriticalityTol);
  penalty += 40.0 * dk * dk + 4.0 * dk;
  const double dflux = std::max(0.0, kFluxFloor - state.thermal_flux);
  penalty += 40.0 * dflux * dflux + 4.0 * dflux;
  const double dmod = std::max(0.0, state.moderation - kModerationCap);
  penalty += 40.0 * dmod * dmod + 4.0 * dmod;
  return -state.peak_factor - penalty;
}

}  // namespace pga::workloads
