#include "workloads/images.hpp"

#include <algorithm>
#include <cmath>

namespace pga::workloads {

double Image::sample(double x, double y) const {
  if (x < 0.0 || y < 0.0 || x > static_cast<double>(width_ - 1) ||
      y > static_cast<double>(height_ - 1))
    return 0.0;
  const auto x0 = static_cast<std::size_t>(x);
  const auto y0 = static_cast<std::size_t>(y);
  const std::size_t x1 = std::min(x0 + 1, width_ - 1);
  const std::size_t y1 = std::min(y0 + 1, height_ - 1);
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const double top = at(x0, y0) * (1.0 - fx) + at(x1, y0) * fx;
  const double bottom = at(x0, y1) * (1.0 - fx) + at(x1, y1) * fx;
  return top * (1.0 - fy) + bottom * fy;
}

Image Image::downsample() const {
  Image out(width_ / 2, height_ / 2);
  for (std::size_t y = 0; y < out.height(); ++y)
    for (std::size_t x = 0; x < out.width(); ++x)
      out.at(x, y) = 0.25 * (at(2 * x, 2 * y) + at(2 * x + 1, 2 * y) +
                             at(2 * x, 2 * y + 1) + at(2 * x + 1, 2 * y + 1));
  return out;
}

Image make_textured_image(std::size_t width, std::size_t height,
                          std::size_t blobs, Rng& rng) {
  Image img(width, height);
  // Gradient background gives global structure the correlation can lock onto.
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x)
      img.at(x, y) = 0.2 * (static_cast<double>(x) + static_cast<double>(y)) /
                     static_cast<double>(width + height);

  for (std::size_t b = 0; b < blobs; ++b) {
    const double cx = rng.uniform(0.0, static_cast<double>(width));
    const double cy = rng.uniform(0.0, static_cast<double>(height));
    const double sigma = rng.uniform(1.5, static_cast<double>(width) / 8.0);
    const double amp = rng.uniform(0.2, 0.8);
    const double inv = 1.0 / (2.0 * sigma * sigma);
    // Only touch the local window; blobs decay fast.
    const auto lo_x = static_cast<std::size_t>(std::max(0.0, cx - 3 * sigma));
    const auto hi_x = static_cast<std::size_t>(
        std::min(static_cast<double>(width - 1), cx + 3 * sigma));
    const auto lo_y = static_cast<std::size_t>(std::max(0.0, cy - 3 * sigma));
    const auto hi_y = static_cast<std::size_t>(
        std::min(static_cast<double>(height - 1), cy + 3 * sigma));
    for (std::size_t y = lo_y; y <= hi_y; ++y)
      for (std::size_t x = lo_x; x <= hi_x; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        img.at(x, y) += amp * std::exp(-(dx * dx + dy * dy) * inv);
      }
  }
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x)
      img.at(x, y) = std::clamp(img.at(x, y), 0.0, 1.0);
  return img;
}

namespace {
/// Maps a point of the output image back into source coordinates under the
/// inverse of `t` (rotate about center, then translate).
void inverse_map(const RigidTransform& t, double cx, double cy, double x,
                 double y, double& sx, double& sy) {
  // Forward: p' = R(p - c) + c + d.  Inverse: p = R^T(p' - c - d) + c.
  const double c = std::cos(t.angle), s = std::sin(t.angle);
  const double ux = x - cx - t.dx;
  const double uy = y - cy - t.dy;
  sx = c * ux + s * uy + cx;
  sy = -s * ux + c * uy + cy;
}
}  // namespace

Image apply_transform(const Image& src, const RigidTransform& transform,
                      double noise, Rng& rng) {
  Image out(src.width(), src.height());
  const double cx = static_cast<double>(src.width()) / 2.0;
  const double cy = static_cast<double>(src.height()) / 2.0;
  for (std::size_t y = 0; y < out.height(); ++y)
    for (std::size_t x = 0; x < out.width(); ++x) {
      double sx, sy;
      inverse_map(transform, cx, cy, static_cast<double>(x),
                  static_cast<double>(y), sx, sy);
      double v = src.sample(sx, sy);
      if (noise > 0.0) v += rng.uniform(-noise, noise);
      out.at(x, y) = std::clamp(v, 0.0, 1.0);
    }
  return out;
}

double ncc(const Image& reference, const Image& sensed,
           const RigidTransform& transform) {
  // Warp the sensed image by the *candidate* transform's inverse and compare
  // with the reference where both are defined.
  const double cx = static_cast<double>(reference.width()) / 2.0;
  const double cy = static_cast<double>(reference.height()) / 2.0;
  double sum_a = 0.0, sum_b = 0.0, sum_ab = 0.0, sum_aa = 0.0, sum_bb = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < reference.height(); ++y)
    for (std::size_t x = 0; x < reference.width(); ++x) {
      // The sensed image was produced by warping the reference forward with
      // the true transform; evaluating a candidate means sampling the sensed
      // image at the candidate's *forward* position of (x, y).
      const double c = std::cos(transform.angle), s = std::sin(transform.angle);
      const double px = static_cast<double>(x) - cx;
      const double py = static_cast<double>(y) - cy;
      const double qx = c * px - s * py + cx + transform.dx;
      const double qy = s * px + c * py + cy + transform.dy;
      if (qx < 0.0 || qy < 0.0 ||
          qx > static_cast<double>(sensed.width() - 1) ||
          qy > static_cast<double>(sensed.height() - 1))
        continue;
      const double a = reference.at(x, y);
      const double b = sensed.sample(qx, qy);
      sum_a += a;
      sum_b += b;
      sum_ab += a * b;
      sum_aa += a * a;
      sum_bb += b * b;
      ++n;
    }
  if (n < 16) return -1.0;  // not enough overlap to correlate
  const double dn = static_cast<double>(n);
  const double cov = sum_ab - sum_a * sum_b / dn;
  const double var_a = sum_aa - sum_a * sum_a / dn;
  const double var_b = sum_bb - sum_b * sum_b / dn;
  if (var_a <= 1e-12 || var_b <= 1e-12) return -1.0;
  return cov / std::sqrt(var_a * var_b);
}

RegistrationProblem::RegistrationProblem(Image reference, Image sensed,
                                         double max_shift, double max_angle)
    : reference_(std::move(reference)), sensed_(std::move(sensed)) {
  bounds_.lower = {-max_shift, -max_shift, -max_angle};
  bounds_.upper = {max_shift, max_shift, max_angle};
}

double RegistrationProblem::fitness(const RealVector& genome) const {
  return ncc(reference_, sensed_, decode(genome));
}

RegistrationProblem RegistrationProblem::coarser() const {
  RegistrationProblem coarse(reference_.downsample(), sensed_.downsample(),
                             bounds_.upper[0] / 2.0, bounds_.upper[2]);
  return coarse;
}

}  // namespace pga::workloads
