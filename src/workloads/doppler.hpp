#pragma once
// Model-based spectral estimation of Doppler signals via GA (Solano
// González, Rodríguez Vázquez & García Nocetti 2000).
//
// A synthetic Doppler-ultrasound-like signal is generated from a known AR(p)
// process (two resonant pole pairs, as in blood-flow velocimetry) plus
// noise.  The GA searches the AR coefficient space for the parametric
// spectrum that minimizes the squared distance to the signal's periodogram —
// the adaptive-filter parameter fit of the original paper, at laptop cost.

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga::workloads {

/// Generates n samples of an AR(p) process x[t] = sum a_k x[t-k] + e[t].
[[nodiscard]] std::vector<double> make_ar_signal(
    const std::vector<double>& coeffs, std::size_t n, double noise_sigma,
    Rng& rng);

/// AR coefficients for two resonances at normalized frequencies f1, f2
/// (cycles/sample, < 0.5) with pole radius r (< 1): an AR(4) model.
[[nodiscard]] std::vector<double> two_resonance_ar(double f1, double f2,
                                                   double r);

/// Power spectrum of an AR model at `bins` uniformly spaced frequencies in
/// (0, 0.5): P(f) = sigma^2 / |1 - sum a_k e^{-i 2 pi f k}|^2.
[[nodiscard]] std::vector<double> ar_spectrum(const std::vector<double>& coeffs,
                                              std::size_t bins,
                                              double sigma = 1.0);

/// Periodogram of a signal at `bins` frequencies (simple DFT magnitude^2,
/// Hann-windowed, normalized to unit total power).
[[nodiscard]] std::vector<double> periodogram(const std::vector<double>& signal,
                                              std::size_t bins);

/// GA problem: genome = AR(p) coefficients; fitness = negative L2 distance
/// between the model spectrum and the target periodogram (both normalized).
class SpectralFitProblem final : public Problem<RealVector> {
 public:
  SpectralFitProblem(std::vector<double> signal, std::size_t order,
                     std::size_t bins = 64);

  [[nodiscard]] double fitness(const RealVector& genome) const override;
  [[nodiscard]] std::string name() const override { return "spectral-fit"; }

  [[nodiscard]] const Bounds& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<double>& target_spectrum() const noexcept {
    return target_;
  }
  [[nodiscard]] std::size_t order() const noexcept { return order_; }

  /// Dominant frequency (bin centre) of an AR model's spectrum — the
  /// clinically relevant velocity estimate.
  [[nodiscard]] static double dominant_frequency(
      const std::vector<double>& spectrum);

 private:
  std::size_t order_;
  std::size_t bins_;
  std::vector<double> target_;
  Bounds bounds_;
};

}  // namespace pga::workloads
