#include "workloads/doppler.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pga::workloads {

std::vector<double> make_ar_signal(const std::vector<double>& coeffs,
                                   std::size_t n, double noise_sigma,
                                   Rng& rng) {
  const std::size_t p = coeffs.size();
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double v = noise_sigma * rng.gaussian();
    for (std::size_t k = 0; k < p && k < t; ++k) v += coeffs[k] * x[t - 1 - k];
    x[t] = v;
  }
  return x;
}

std::vector<double> two_resonance_ar(double f1, double f2, double r) {
  // Each pole pair contributes 1 - 2r cos(2 pi f) z^-1 + r^2 z^-2; the AR
  // coefficients are the negated convolution of the two quadratics (minus
  // the leading 1).
  auto quad = [&](double f) {
    return std::vector<double>{1.0, -2.0 * r * std::cos(2.0 * std::numbers::pi * f),
                               r * r};
  };
  const auto q1 = quad(f1), q2 = quad(f2);
  std::vector<double> poly(q1.size() + q2.size() - 1, 0.0);
  for (std::size_t i = 0; i < q1.size(); ++i)
    for (std::size_t j = 0; j < q2.size(); ++j) poly[i + j] += q1[i] * q2[j];
  // x[t] - a1 x[t-1] - ... = e[t]  ->  a_k = -poly[k], k >= 1.
  std::vector<double> coeffs(poly.size() - 1);
  for (std::size_t k = 1; k < poly.size(); ++k) coeffs[k - 1] = -poly[k];
  return coeffs;
}

std::vector<double> ar_spectrum(const std::vector<double>& coeffs,
                                std::size_t bins, double sigma) {
  std::vector<double> spectrum(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double f = 0.5 * (static_cast<double>(b) + 0.5) /
                     static_cast<double>(bins);
    std::complex<double> denom(1.0, 0.0);
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      const double w = 2.0 * std::numbers::pi * f * static_cast<double>(k + 1);
      denom -= coeffs[k] * std::complex<double>(std::cos(w), -std::sin(w));
    }
    spectrum[b] = sigma * sigma / std::norm(denom);
  }
  // Normalize to unit total power so shapes are comparable.
  double total = 0.0;
  for (double v : spectrum) total += v;
  if (total > 0.0)
    for (double& v : spectrum) v /= total;
  return spectrum;
}

std::vector<double> periodogram(const std::vector<double>& signal,
                                std::size_t bins) {
  const std::size_t n = signal.size();
  if (n < 4) throw std::invalid_argument("signal too short");
  std::vector<double> spectrum(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double f = 0.5 * (static_cast<double>(b) + 0.5) /
                     static_cast<double>(bins);
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      // Hann window suppresses leakage.
      const double w =
          0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(t) /
                                static_cast<double>(n - 1)));
      const double phase = 2.0 * std::numbers::pi * f * static_cast<double>(t);
      acc += w * signal[t] *
             std::complex<double>(std::cos(phase), -std::sin(phase));
    }
    spectrum[b] = std::norm(acc);
  }
  double total = 0.0;
  for (double v : spectrum) total += v;
  if (total > 0.0)
    for (double& v : spectrum) v /= total;
  return spectrum;
}

SpectralFitProblem::SpectralFitProblem(std::vector<double> signal,
                                       std::size_t order, std::size_t bins)
    : order_(order),
      bins_(bins),
      target_(periodogram(signal, bins)),
      bounds_(order, -2.0, 2.0) {}

double SpectralFitProblem::fitness(const RealVector& genome) const {
  const auto model = ar_spectrum(genome.values, bins_);
  double dist = 0.0;
  for (std::size_t b = 0; b < bins_; ++b) {
    const double d = model[b] - target_[b];
    dist += d * d;
  }
  return -dist;
}

double SpectralFitProblem::dominant_frequency(
    const std::vector<double>& spectrum) {
  std::size_t best = 0;
  for (std::size_t b = 1; b < spectrum.size(); ++b)
    if (spectrum[b] > spectrum[best]) best = b;
  return 0.5 * (static_cast<double>(best) + 0.5) /
         static_cast<double>(spectrum.size());
}

}  // namespace pga::workloads
