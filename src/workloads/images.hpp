#pragma once
// Synthetic image workload for GA-based registration (Chalermwat, El-Ghazawi
// & LeMoigne 2001: 2-phase GA registration of LandSat imagery).
//
// We generate textured grayscale images (mixtures of Gaussian blobs over a
// gradient), apply a rigid transform (rotation + translation) with noise to
// obtain the "sensed" image, and search for the transform maximizing
// normalized cross-correlation (NCC).  The 2-phase algorithm of the paper
// runs a GA on a downsampled pyramid level first, then refines at full
// resolution around the phase-1 candidates.

#include <cstddef>
#include <vector>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace pga::workloads {

/// Row-major grayscale image with values in [0, 1].
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, double fill = 0.0)
      : width_(width), height_(height), pixels_(width * height, fill) {}

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  [[nodiscard]] double& at(std::size_t x, std::size_t y) {
    return pixels_[y * width_ + x];
  }
  [[nodiscard]] double at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }

  /// Bilinear sample at a real-valued position; out-of-bounds reads return 0.
  [[nodiscard]] double sample(double x, double y) const;

  /// 2x box-filter downsample (one pyramid level).
  [[nodiscard]] Image downsample() const;

  [[nodiscard]] const std::vector<double>& pixels() const noexcept {
    return pixels_;
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<double> pixels_;
};

/// Rigid 2-D transform: rotate by `angle` (radians) about the image center,
/// then translate by (dx, dy) pixels.
struct RigidTransform {
  double dx = 0.0;
  double dy = 0.0;
  double angle = 0.0;
};

/// Generates a textured reference image: `blobs` Gaussian bumps of random
/// position/scale/amplitude on a diagonal gradient background.
[[nodiscard]] Image make_textured_image(std::size_t width, std::size_t height,
                                        std::size_t blobs, Rng& rng);

/// Applies `transform` to `src` (inverse-warp with bilinear sampling) and
/// adds pixel noise of amplitude `noise` (clamped to [0, 1]).
[[nodiscard]] Image apply_transform(const Image& src,
                                    const RigidTransform& transform,
                                    double noise, Rng& rng);

/// Normalized cross-correlation between the overlap of `a` and `b` warped by
/// `transform` (the registration objective; 1.0 = perfect).
[[nodiscard]] double ncc(const Image& reference, const Image& sensed,
                         const RigidTransform& transform);

/// Registration problem: genome = (dx, dy, angle) as a RealVector, fitness =
/// NCC against the reference at this pyramid level.
class RegistrationProblem final : public Problem<RealVector> {
 public:
  /// Search bounds: +-max_shift pixels, +-max_angle radians.
  RegistrationProblem(Image reference, Image sensed, double max_shift,
                      double max_angle);

  [[nodiscard]] double fitness(const RealVector& genome) const override;
  [[nodiscard]] std::string name() const override { return "registration"; }

  [[nodiscard]] const Bounds& bounds() const noexcept { return bounds_; }
  [[nodiscard]] static RigidTransform decode(const RealVector& genome) {
    return {genome[0], genome[1], genome[2]};
  }

  /// A coarser version of this problem (one pyramid level down): shifts are
  /// halved in pixel units, angles unchanged.
  [[nodiscard]] RegistrationProblem coarser() const;

 private:
  Image reference_;
  Image sensed_;
  Bounds bounds_;
};

}  // namespace pga::workloads
