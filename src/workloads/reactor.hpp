#pragma once
// Nuclear reactor core design workload (Pereira & Lapa 2003: coarse-grained
// island GA minimizing the average peak factor of a three-enrichment-zone
// reactor under thermal-flux, criticality and sub-moderation constraints).
//
// The physics code is replaced by a smooth synthetic core model (DESIGN.md
// §2) with the same decision structure: per-zone enrichment levels (integer
// choices), fuel/moderator dimensions (reals), and constraint penalties.
// The model is built so the unconstrained optimum violates criticality —
// the GA must negotiate the constraint boundary, as in the original study.

#include <cstddef>
#include <string>

#include "core/genome.hpp"
#include "core/problem.hpp"

namespace pga::workloads {

/// Decoded design: 3 integer enrichment levels (0..9 -> 1.5%..4.2%) plus
/// fuel radius and moderator pitch (normalized reals).
struct ReactorDesign {
  int enrichment[3];     ///< per-zone enrichment step, 0..9
  double fuel_radius;    ///< [0.4, 0.6] cm
  double pitch;          ///< [1.0, 1.6] cm lattice pitch
};

/// Core model outputs.
struct ReactorState {
  double peak_factor;   ///< radial power peaking (minimize)
  double k_eff;         ///< effective multiplication factor (must be ~1)
  double thermal_flux;  ///< average thermal flux (must exceed a floor)
  double moderation;    ///< moderator-to-fuel ratio (must stay sub-moderated)
};

class ReactorProblem final : public Problem<RealVector> {
 public:
  /// Genome: 5 genes in [0,1] (3 enrichments discretized to 10 steps, fuel
  /// radius, pitch).
  [[nodiscard]] static Bounds genome_bounds() { return Bounds(5, 0.0, 1.0); }
  [[nodiscard]] static ReactorDesign decode(const RealVector& genome);
  [[nodiscard]] static ReactorState evaluate_core(const ReactorDesign& design);

  /// Fitness = -(peak factor) - constraint penalties (maximize).
  [[nodiscard]] double fitness(const RealVector& genome) const override;
  [[nodiscard]] double objective(const RealVector& genome) const override;
  [[nodiscard]] std::string name() const override { return "reactor-core"; }

  /// True iff every constraint is satisfied.
  [[nodiscard]] static bool feasible(const ReactorState& state);
};

}  // namespace pga::workloads
