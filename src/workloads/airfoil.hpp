#pragma once
// Transonic wing / airfoil design surrogate (Oyama, Obayashi & Nakamura
// 2000: real-coded adaptive-range GA for aerodynamic wing optimization;
// Sefrioui & Périaux 2000: multi-fidelity hierarchical GA on nozzle/airfoil
// models).
//
// The surrogate replaces the CFD solver (DESIGN.md §2): a smooth analytic
// lift/drag model over a parametric section (camber, camber position,
// thickness, angle of attack, twist, sweep) with a transonic drag-rise term
// that punishes thick, highly-cambered sections — giving the narrow-valley,
// mildly multimodal landscape typical of aerodynamic optimization.  Fidelity
// levels add systematic model error (ripple) and cost less, which is exactly
// what the hierarchical GA exploits.

#include <cstddef>
#include <string>

#include "core/genome.hpp"
#include "core/problem.hpp"
#include "parallel/hierarchical.hpp"

namespace pga::workloads {

/// Decoded design variables (all normalized into physical ranges).
struct AirfoilDesign {
  double camber;         ///< [0, 0.09] fraction of chord
  double camber_pos;     ///< [0.2, 0.7] chordwise position
  double thickness;      ///< [0.06, 0.18] fraction of chord
  double alpha;          ///< [-2, 8] degrees angle of attack
  double twist;          ///< [-4, 4] degrees
  double sweep;          ///< [10, 40] degrees
};

class AirfoilSurrogate final : public MultiFidelityProblem<RealVector> {
 public:
  /// `levels` model fidelities; level 0 is exact, each level up multiplies
  /// the cost by 1/cost_ratio and adds error ripple.
  explicit AirfoilSurrogate(std::size_t levels = 3, double cost_ratio = 8.0)
      : levels_(levels), cost_ratio_(cost_ratio) {}

  /// Genome layout (6 genes in [0,1]) mapped to the physical ranges above.
  [[nodiscard]] static Bounds genome_bounds() { return Bounds(6, 0.0, 1.0); }
  [[nodiscard]] static AirfoilDesign decode(const RealVector& genome);

  /// Exact lift-to-drag objective (maximized).
  [[nodiscard]] static double lift_to_drag(const AirfoilDesign& design);

  [[nodiscard]] std::size_t num_levels() const override { return levels_; }
  [[nodiscard]] double fitness(const RealVector& genome,
                               std::size_t level) const override;
  [[nodiscard]] double cost(std::size_t level) const override;
  [[nodiscard]] std::string name() const override { return "airfoil"; }

 private:
  std::size_t levels_;
  double cost_ratio_;
};

/// Single-fidelity view of the surrogate as a plain Problem (level 0), for
/// the real-coded GA example and tests.
class AirfoilProblem final : public Problem<RealVector> {
 public:
  [[nodiscard]] double fitness(const RealVector& genome) const override {
    return AirfoilSurrogate::lift_to_drag(AirfoilSurrogate::decode(genome));
  }
  [[nodiscard]] std::string name() const override { return "airfoil-hifi"; }
};

/// Adaptive-range GA (Oyama 2000): periodically re-centers and shrinks the
/// sampling bounds around the elite individuals, so the real-coded search
/// concentrates on the promising region.  Returns updated bounds clamped to
/// the original box.
[[nodiscard]] Bounds adapt_range(const Bounds& original, const Bounds& current,
                                 const std::vector<Individual<RealVector>>& elite,
                                 double shrink = 0.8);

}  // namespace pga::workloads
