#pragma once
// Completion-driven evaluation pipeline: the engine-side counterpart of the
// detached-task API in thread_pool.hpp.
//
// A bulk-synchronous engine pays a barrier per generation: every lane waits
// for the slowest evaluation before variation may resume.  This pipeline
// removes the barrier.  The engine *stages* offspring into fixed micro-batches
// (one SoaSlab-backed batch per window slot), *dispatches* a batch to the
// work-stealing pool the moment it fills, and *collects* completed batches in
// whatever order the pool finishes them.  A bounded window of in-flight
// batches provides backpressure: staging blocks (can_stage() == false) until
// a completion is collected and released, so selection pressure never lags
// more than `max_in_flight * batch_size` evaluations behind the population.
//
// Determinism contract: the pipeline itself is intentionally *not*
// deterministic — completion order is whatever the pool produces.  The engine
// on top (core/async_steady_state.hpp) records the logical order in which it
// dispatched and folded batches; replaying that schedule reproduces the run
// bit-identically because evaluation itself is pure (evaluate_batch) and all
// RNG stays on the engine thread.
//
// Threading rules:
//   * stage/commit/dispatch/try_collect/wait_collect/release are engine-thread
//     only.  Worker lanes touch a batch only between post() and the completion
//     push, and the engine only re-touches it after collecting it.
//   * Worker bodies never throw: evaluation exceptions are captured into the
//     batch and re-thrown on the engine thread by collect.
//   * With an inline executor (par.parallel() == false) dispatch() evaluates
//     synchronously on the engine thread; the collect interface is unchanged.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "core/soa.hpp"
#include "exec/parallelism.hpp"

namespace pga::exec {

template <class G>
class AsyncEvalPipeline {
 public:
  struct Config {
    /// Offspring per micro-batch.  kSoaLanes keeps the SoA kernels saturated
    /// for problems that have one; for scalar problems it simply amortises
    /// the per-dispatch synchronisation.
    std::size_t batch_size = kSoaLanes;
    /// Bounded window: number of batches that may be staged-or-in-flight at
    /// once.  This is the backpressure knob; 1 degenerates to a perfect
    /// barrier per batch (the synchronous control in bench_q1).
    std::size_t max_in_flight = 4;
  };

  /// A collected batch, valid until release(id) is called for it.
  struct Completed {
    std::uint64_t id = 0;
    std::span<const G> genomes;
    std::span<const double> fitness;
  };

  AsyncEvalPipeline(const Problem<G>& problem, const Parallelism& par,
                    Config cfg = {})
      : problem_(problem), par_(par), cfg_(cfg) {
    if (cfg_.batch_size == 0) cfg_.batch_size = 1;
    if (cfg_.max_in_flight == 0) cfg_.max_in_flight = 1;
    slots_.reserve(cfg_.max_in_flight);
    for (std::size_t s = 0; s < cfg_.max_in_flight; ++s) {
      slots_.push_back(std::make_unique<Batch>());
      Batch& b = *slots_.back();
      b.owner = this;
      b.genomes.resize(cfg_.batch_size);
      b.fitness.resize(cfg_.batch_size);
      free_.push_back(&b);
    }
  }

  AsyncEvalPipeline(const AsyncEvalPipeline&) = delete;
  AsyncEvalPipeline& operator=(const AsyncEvalPipeline&) = delete;

  /// Blocks until every posted worker body has finished touching its batch,
  /// so abandoning a pipeline mid-run (engine exception) is safe.
  ~AsyncEvalPipeline() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return pending_ == 0; });
  }

  /// True when another offspring can be staged without blocking: either a
  /// batch is open or a free window slot exists.
  [[nodiscard]] bool can_stage() const noexcept {
    return staging_ != nullptr || !free_.empty();
  }

  /// Slot for the next offspring.  Opens a batch from the free window slot
  /// when none is open; precondition can_stage().
  [[nodiscard]] G& stage_slot() {
    if (staging_ == nullptr) {
      if (free_.empty())
        throw std::logic_error("stage_slot: in-flight window is full");
      staging_ = free_.back();
      free_.pop_back();
      staging_->count = 0;
      staging_->error = nullptr;
    }
    return staging_->genomes[staging_->count];
  }

  /// The offspring written via stage_slot() is final; it will ride the next
  /// dispatch().  The batch stays open until it fills or is flushed.
  void commit_slot() noexcept { ++staging_->count; }

  [[nodiscard]] std::size_t staged() const noexcept {
    return staging_ ? staging_->count : 0;
  }
  [[nodiscard]] bool staged_full() const noexcept {
    return staging_ && staging_->count == cfg_.batch_size;
  }

  /// Posts the open batch (full or partial) to the pool and returns its id.
  /// Inline executors evaluate here, on the calling thread.
  std::uint64_t dispatch() {
    Batch* b = staging_;
    if (b == nullptr || b->count == 0)
      throw std::logic_error("dispatch: no staged offspring");
    staging_ = nullptr;
    b->id = next_id_++;
    ++in_flight_;
    if (par_.parallel()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
      }
      b->task.arm(&run_batch_task, b);
      par_.pool()->post(b->task);
    } else {
      execute(*b, /*lane=*/0);
    }
    return b->id;
  }

  /// Batches posted but not yet collected (completed-but-uncollected count).
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  /// Non-blocking collect in pool completion order.  Re-throws an evaluation
  /// exception captured by the worker body (the batch is recycled first).
  [[nodiscard]] bool try_collect(Completed& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (done_.empty()) return false;
    take(out, lock);
    return true;
  }

  /// Blocking collect; precondition in_flight() > 0 (otherwise it would wait
  /// forever — the engine's loop structure guarantees this).
  void wait_collect(Completed& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !done_.empty(); });
    take(out, lock);
  }

  /// Returns a collected batch's window slot to the free pool.  The Completed
  /// spans for `id` are invalid afterwards.
  void release(std::uint64_t id) {
    for (std::size_t k = 0; k < collected_.size(); ++k) {
      if (collected_[k]->id == id) {
        free_.push_back(collected_[k]);
        collected_.erase(collected_.begin() + static_cast<std::ptrdiff_t>(k));
        return;
      }
    }
    throw std::logic_error("release: unknown batch id");
  }

 private:
  struct Batch {
    AsyncEvalPipeline* owner = nullptr;
    std::uint64_t id = 0;
    std::size_t count = 0;
    std::vector<G> genomes;
    std::vector<double> fitness;
    SoaSlab<G> slab;
    std::exception_ptr error;
    ThreadPool::Task task;
  };

  static void run_batch_task(void* ctx, int lane) {
    Batch* b = static_cast<Batch*>(ctx);
    b->owner->execute(*b, lane);
  }

  // Worker body (or the engine thread, inline mode).  Must not throw: the
  // completion push is how the engine learns the batch is done.
  void execute(Batch& b, int lane) {
    const obs::Tracer& trace = par_.tracer();
    if (trace) trace.span_begin(lane, par_.now(), "compute");
    try {
      evaluate_batch(problem_, std::span<const G>(b.genomes.data(), b.count),
                     b.slab, std::span<double>(b.fitness.data(), b.count));
    } catch (...) {
      b.error = std::current_exception();
    }
    if (trace) {
      const double t1 = par_.now();
      trace.evaluation_batch(lane, t1, b.count, "eval_chunk", b.id);
      trace.span_end(lane, t1, "compute");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    done_.push_back(&b);
    if (pending_ > 0) --pending_;  // inline mode never incremented
    // Notify under the lock: the destructor may tear the pipeline down the
    // instant the predicate holds, so the cv must not be touched after
    // releasing the mutex.  This push is also the worker's final access to
    // the batch, full stop — the pool invokes detached bodies as its last
    // touch of the Task (see thread_pool.hpp), so once pending_ hits 0 the
    // destructor may free the Batch, and a collected-and-released batch may
    // be re-armed without racing a trailing pool decrement.
    cv_.notify_all();
  }

  void take(Completed& out, std::unique_lock<std::mutex>& lock) {
    Batch* b = done_.front();
    done_.pop_front();
    lock.unlock();
    --in_flight_;
    if (b->error) {
      free_.push_back(b);
      std::rethrow_exception(std::exchange(b->error, nullptr));
    }
    collected_.push_back(b);
    out.id = b->id;
    out.genomes = std::span<const G>(b->genomes.data(), b->count);
    out.fitness = std::span<const double>(b->fitness.data(), b->count);
  }

  const Problem<G>& problem_;
  const Parallelism& par_;
  Config cfg_;

  std::vector<std::unique_ptr<Batch>> slots_;
  std::vector<Batch*> free_;       // engine-thread only
  std::vector<Batch*> collected_;  // engine-thread only
  Batch* staging_ = nullptr;       // engine-thread only
  // Ids start at 1: msg_id 0 is the "not part of an async batch" sentinel in
  // obs (Tracer::evaluation_batch, chrome_trace flow arrows), so batch 0
  // would lose its dispatch→complete flow and pool-lane correlation.
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;

  std::mutex mutex_;  // guards done_ / pending_
  std::condition_variable cv_;
  std::deque<Batch*> done_;
  std::size_t pending_ = 0;
};

}  // namespace pga::exec
