#pragma once
// Work-stealing thread pool: the wall-clock execution backend.
//
// pga::sim answers "how would this algorithm scale?" with virtual time on a
// single thread; this pool answers "how fast does it actually run?" on real
// cores.  The design goal is the bulk-synchronous `parallel_for` that the GA
// hot paths need (evaluate a population, step a set of demes), not a general
// task graph:
//
//   * one Chase–Lev deque per *lane*.  Lane 0 belongs to the caller of
//     `parallel_for`, lanes 1..threads-1 to dedicated workers.  The caller
//     does not block waiting for the loop — it binds lane 0 and helps, so
//     `threads=n` really means n cores chewing on chunks.
//   * chunks are pushed to the submitting lane's own deque and spread by
//     stealing.  Uniform loops never migrate work (each lane steals once and
//     then owns a contiguous range); skewed loops rebalance automatically.
//   * `parallel_for` is re-entrant: a body that calls back into the pool
//     runs the nested loop on its own lane's deque, so nesting cannot
//     deadlock (tested in test_exec.cpp).
//   * exceptions: the lowest-index throwing chunk wins and is rethrown on
//     the caller after every chunk settled, so a throwing loop behaves like
//     its sequential equivalent (deterministically, regardless of which
//     worker ran the chunk).
//
// Determinism contract: the pool never touches RNG state and never reorders
// *what* is computed, only *where*.  Callers that keep per-index work pure
// (fitness evaluation) or key parallelism by stable indices (deme id via
// Rng::split) get byte-identical results at any thread count.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "../obs/events.hpp"
#include "steal_deque.hpp"

namespace pga::exec {

/// Monotonic pool counters, mirrored into obs::MetricsRegistry on demand.
/// Aggregates are process-lifetime totals; `lanes` breaks them down per lane
/// and `steal_matrix` (lanes² row-major, [thief * n + victim]) records who
/// stole from whom.  Counters only ever grow, so per-run numbers come from
/// the epoch API: snapshot before the run, `delta(before)` after.
struct PoolStats {
  struct Lane {
    std::uint64_t tasks_executed = 0;  ///< chunks this lane ran
    std::uint64_t steals = 0;          ///< successful steals by this lane
    std::uint64_t steal_failures = 0;  ///< full sweeps that found nothing
    std::uint64_t parks = 0;           ///< times the lane blocked on the cv
    std::uint64_t unparks = 0;         ///< wakes from a parked state
  };

  std::uint64_t tasks_executed = 0;  ///< chunks run (by workers or helpers)
  std::uint64_t steals = 0;          ///< successful deque steals
  std::uint64_t steal_failures = 0;  ///< full victim sweeps that found nothing
  std::uint64_t parks = 0;           ///< lane park episodes
  std::uint64_t unparks = 0;         ///< lane wakes
  std::vector<Lane> lanes;           ///< per-lane breakdown, index = lane
  std::vector<std::uint64_t> steal_matrix;  ///< lanes²: [thief * n + victim]

  /// Successful steals by `thief` from `victim` (0 when out of range).
  [[nodiscard]] std::uint64_t stolen(std::size_t thief,
                                     std::size_t victim) const noexcept {
    const std::size_t n = lanes.size();
    if (thief >= n || victim >= n) return 0;
    return steal_matrix[thief * n + victim];
  }

  /// Epoch semantics: counters accumulated since `since` was taken (both
  /// snapshots must come from the same pool).  Saturates at zero so a stale
  /// or mismatched baseline degrades to the raw totals, never wraps.
  [[nodiscard]] PoolStats delta(const PoolStats& since) const {
    auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;
    };
    PoolStats d = *this;
    d.tasks_executed = sub(tasks_executed, since.tasks_executed);
    d.steals = sub(steals, since.steals);
    d.steal_failures = sub(steal_failures, since.steal_failures);
    d.parks = sub(parks, since.parks);
    d.unparks = sub(unparks, since.unparks);
    for (std::size_t l = 0; l < d.lanes.size() && l < since.lanes.size();
         ++l) {
      d.lanes[l].tasks_executed =
          sub(lanes[l].tasks_executed, since.lanes[l].tasks_executed);
      d.lanes[l].steals = sub(lanes[l].steals, since.lanes[l].steals);
      d.lanes[l].steal_failures =
          sub(lanes[l].steal_failures, since.lanes[l].steal_failures);
      d.lanes[l].parks = sub(lanes[l].parks, since.lanes[l].parks);
      d.lanes[l].unparks = sub(lanes[l].unparks, since.lanes[l].unparks);
    }
    for (std::size_t k = 0;
         k < d.steal_matrix.size() && k < since.steal_matrix.size(); ++k)
      d.steal_matrix[k] = sub(steal_matrix[k], since.steal_matrix[k]);
    return d;
  }
};

class ThreadPool {
 public:
  /// `threads` = total lanes incl. the caller; clamped to >= 1.  threads=1
  /// spawns no workers at all — parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads)
      : lanes_(threads == 0 ? 1 : threads),
        matrix_stride_((lanes_ + 7) / 8 * 8),  // rows cache-line aligned
        counters_(std::make_unique<LaneCounters[]>(lanes_)),
        steal_matrix_(std::make_unique<std::atomic<std::uint64_t>[]>(
            lanes_ * matrix_stride_)) {
    deques_.reserve(lanes_);
    for (std::size_t i = 0; i < lanes_; ++i)
      deques_.push_back(std::make_unique<StealDeque<Chunk*>>());
    workers_.reserve(lanes_ > 0 ? lanes_ - 1 : 0);
    for (std::size_t lane = 1; lane < lanes_; ++lane)
      workers_.emplace_back([this, lane] { worker_main(static_cast<int>(lane)); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      stopping_ = true;
      ++work_epoch_;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t concurrency() const noexcept { return lanes_; }

  /// Chunked parallel loop over [begin, end).  `body(lo, hi, lane)` runs on
  /// some lane in [0, concurrency()); chunk boundaries are a pure function
  /// of (range, grain, concurrency), never of scheduling.  Blocks until the
  /// whole range ran; rethrows the lowest-index chunk's exception, if any.
  template <class Body>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Body&& body) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t num_chunks = (n + grain - 1) / grain;
    if (lanes_ == 1 || num_chunks == 1) {
      const int lane = bound_lane();
      if (const SchedState* s = sched_.load(std::memory_order_acquire)) {
        const auto t0 = std::chrono::steady_clock::now();
        body(begin, end, lane);
        const auto t1 = std::chrono::steady_clock::now();
        s->trace.task_run(s->lane_base + lane, stamp(*s, t1),
                          elapsed_ns(t0, t1), n);
      } else {
        body(begin, end, lane);
      }
      bump(counters_[static_cast<std::size_t>(lane)].tasks);
      return;
    }

    LoopState st;
    st.body = &body;
    st.invoke = [](void* b, std::size_t lo, std::size_t hi, int lane) {
      (*static_cast<Body*>(b))(lo, hi, lane);
    };
    st.remaining.store(num_chunks, std::memory_order_relaxed);

    std::vector<Chunk> chunks(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      chunks[c].state = &st;
      chunks[c].lo = begin + c * grain;
      chunks[c].hi = std::min(end, begin + (c + 1) * grain);
      chunks[c].index = c;
    }

    SubmitGuard submit(*this);
    const int my_lane = submit.lane();
    // Reverse push: the owner pops LIFO, so chunk 0 comes off first and the
    // caller's lane walks the range front-to-back while thieves take the
    // tail — the same front/back split a static partition would give.
    for (std::size_t c = num_chunks; c-- > 0;)
      deques_[static_cast<std::size_t>(my_lane)]->push(&chunks[c]);
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
    }
    wake_cv_.notify_all();

    help_until_done(st, my_lane);

    if (st.error) std::rethrow_exception(st.error);
  }

  /// Lock-free aggregation of the per-lane counters: each lane writes only
  /// its own cache-line-padded slot, so a read here is a relaxed sweep with
  /// no effect on the hot path.  The snapshot is per-counter consistent (a
  /// concurrent run may skew lanes against each other by in-flight chunks).
  [[nodiscard]] PoolStats stats() const {
    PoolStats s;
    s.lanes.resize(lanes_);
    s.steal_matrix.resize(lanes_ * lanes_);
    for (std::size_t l = 0; l < lanes_; ++l) {
      const LaneCounters& c = counters_[l];
      PoolStats::Lane& out = s.lanes[l];
      out.tasks_executed = c.tasks.load(std::memory_order_relaxed);
      out.steals = c.steals.load(std::memory_order_relaxed);
      out.steal_failures = c.steal_failures.load(std::memory_order_relaxed);
      out.parks = c.parks.load(std::memory_order_relaxed);
      out.unparks = c.unparks.load(std::memory_order_relaxed);
      s.tasks_executed += out.tasks_executed;
      s.steals += out.steals;
      s.steal_failures += out.steal_failures;
      s.parks += out.parks;
      s.unparks += out.unparks;
    }
    for (std::size_t thief = 0; thief < lanes_; ++thief)
      for (std::size_t victim = 0; victim < lanes_; ++victim)
        s.steal_matrix[thief * lanes_ + victim] =
            steal_matrix_[thief * matrix_stride_ + victim].load(
                std::memory_order_relaxed);
    return s;
  }

  /// Attach (or detach, with a null tracer) the scheduler tracer: lanes emit
  /// kTaskRun / kSteal / kLanePark stamped `seconds since epoch`, with rank =
  /// lane_base + lane so pool events share the engine trace's rank space.
  /// Safe to call while workers run — state is published via an atomic
  /// pointer and old states are retired, not freed.  With no tracer bound
  /// the per-chunk cost is one relaxed load and branch (gated by bench_s1).
  ///
  /// Sink lifetime: worker lanes emit *asynchronously* — a failed-steal
  /// sweep or park event can trail the parallel_for that provoked it — so
  /// the traced sink must outlive the pool, OR the owner must detach first.
  /// Detaching (null tracer) is a quiesce point: it waits for an in-flight
  /// external loop, then handshakes every worker lane past the generation
  /// flip, so on return no lane will ever touch the old sink again.  Call
  /// it from outside the pool (a detach from inside a task body would wait
  /// on its own lane).
  void set_sched_tracer(obs::Tracer trace,
                        std::chrono::steady_clock::time_point epoch,
                        int lane_base = 0) {
    if (!trace) {
      // Wait out any external parallel_for (loops hold submit_mutex_ for
      // their duration) and block new ones while we drain the lanes.
      std::lock_guard<std::mutex> submit(submit_mutex_);
      sched_.store(nullptr, std::memory_order_release);
      // Generation flip, released *after* the null store: a lane that
      // acquire-loads the new generation is guaranteed to read the tracer
      // as null for the rest of that iteration.
      const std::uint64_t gen =
          sched_gen_.fetch_add(1, std::memory_order_acq_rel) + 1;
      // Every worker publishes sched_seen at the top of each iteration,
      // *before* it can park — so repeated wake bumps (a worker may enter a
      // fresh park between our bump and its publish) push each lane to the
      // loop top, where it observes the flip.  The acquire load below then
      // orders all of that lane's prior emissions before our return.
      for (std::size_t l = 1; l < lanes_; ++l) {
        while (counters_[l].sched_seen.load(std::memory_order_acquire) <
               gen) {
          {
            std::lock_guard<std::mutex> lock(wake_mutex_);
            ++work_epoch_;
          }
          wake_cv_.notify_all();
          std::this_thread::yield();
        }
      }
      return;
    }
    auto state = std::make_unique<SchedState>();
    state->trace = trace;
    state->epoch = epoch;
    state->lane_base = lane_base;
    const SchedState* published = state.get();
    {
      std::lock_guard<std::mutex> lock(sched_states_mutex_);
      sched_states_.push_back(std::move(state));
    }
    sched_.store(published, std::memory_order_release);
  }

 private:
  // Chunk/LoopState are defined up here (not with the rest of the private
  // machinery below) because the public Task handle embeds them by value.
  struct LoopState {
    void* body = nullptr;
    void (*invoke)(void*, std::size_t, std::size_t, int) = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = 0;
    bool has_error = false;
  };

  struct Chunk {
    LoopState* state = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t index = 0;
    bool detached = false;  ///< Task chunk: body runs as the last touch
  };

 public:
  // ---- Detached one-shot tasks --------------------------------------------
  //
  // parallel_for is a barrier by construction: the submitter helps until the
  // whole range settled.  The async evaluation pipeline needs the opposite —
  // post work and keep running — so a Task is a caller-owned chunk that some
  // worker steals and runs exactly once, while the poster never blocks.
  //
  //   * storage: the Task object (and everything its body touches) must stay
  //     alive until the body has finished.  Tasks are recyclable: re-arm()
  //     and re-post() after completion (the pipeline pools them per batch).
  //   * completion: the pool only guarantees execution.  Signalling is the
  //     body's job (push to your own completion queue as the last action).
  //     Invoking the body is the pool's LAST access to the Task — no
  //     bookkeeping touches it afterwards — so the owner may destroy or
  //     recycle the Task the instant the body's signal lands.  This also
  //     means bodies must not let exceptions escape (there is nowhere safe
  //     to park one): capture them into caller-owned state and report at
  //     fold time; a throwing detached body terminates the process.
  //   * queueing: posts land in lane 0's deque under submit_mutex_ — the
  //     same serialization an external parallel_for caller uses, so the
  //     Chase–Lev owner-only push invariant holds — and are consumed by
  //     worker *steals* only.  A post made while another thread runs a
  //     parallel_for blocks until that loop finishes (loops hold the mutex).
  //   * progress: requires at least one worker (concurrency() > 1).  With a
  //     single-lane pool nothing ever steals, so callers must run the body
  //     inline instead of posting.

  /// Caller-owned handle for one detached task.  Not movable (workers hold
  /// its address); arm() before every post().
  class Task {
   public:
    using Fn = void (*)(void* ctx, int lane);

    Task() {
      chunk_.state = &st_;
      chunk_.detached = true;
      st_.body = this;
      st_.invoke = [](void* self, std::size_t, std::size_t, int lane) {
        Task* t = static_cast<Task*>(self);
        t->fn_(t->ctx_, lane);
      };
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    /// Binds the body for the next post().  Must not be called between a
    /// post() and the body having signalled completion.  No counter to
    /// reset: detached chunks bypass the loop bookkeeping entirely (see
    /// run_chunk), which is what makes re-arming a just-completed Task safe.
    void arm(Fn fn, void* ctx) noexcept {
      fn_ = fn;
      ctx_ = ctx;
    }

   private:
    friend class ThreadPool;
    Fn fn_ = nullptr;
    void* ctx_ = nullptr;
    LoopState st_;
    Chunk chunk_;
  };

  /// Enqueues an armed task; some worker will run it exactly once.  The
  /// caller must have checked concurrency() > 1 (see progress note above)
  /// and keep `t` alive until the body ran.
  void post(Task& t) {
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      deques_[0]->push(&t.chunk_);
    }
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
    }
    wake_cv_.notify_all();
  }

 private:
  /// thread_local binding of this thread to a pool lane, stacked so nested
  /// parallel_for calls restore the outer binding on unwind.
  struct Binding {
    ThreadPool* pool = nullptr;
    int lane = 0;
  };
  static Binding& tls_binding() {
    thread_local Binding b;
    return b;
  }

  [[nodiscard]] int bound_lane() const {
    const Binding& b = tls_binding();
    return b.pool == this ? b.lane : 0;
  }

  /// An external (unbound) caller claims lane 0 for the loop's duration,
  /// serialized by submit_mutex_.  A bound thread (worker, or any thread
  /// inside a nested parallel_for) keeps its lane and skips the mutex —
  /// that is what makes nesting deadlock-free.
  class SubmitGuard {
   public:
    explicit SubmitGuard(ThreadPool& p) : pool_(p), saved_(tls_binding()) {
      external_ = saved_.pool != &p;
      if (external_) {
        p.submit_mutex_.lock();
        tls_binding() = Binding{&p, 0};
      }
    }
    ~SubmitGuard() {
      if (external_) {
        tls_binding() = saved_;
        pool_.submit_mutex_.unlock();
      }
    }
    SubmitGuard(const SubmitGuard&) = delete;
    SubmitGuard& operator=(const SubmitGuard&) = delete;

    [[nodiscard]] int lane() const { return tls_binding().lane; }

   private:
    ThreadPool& pool_;
    Binding saved_;
    bool external_;
  };

  /// Per-lane counters, one cache line each so a lane's relaxed increments
  /// never bounce a line shared with another lane (the old pool-global
  /// `steals_`/`steal_failures_` atomics were hammered by every lane's steal
  /// sweep).  Each slot is written only by code running *as* that lane;
  /// stats() aggregates with relaxed loads.
  struct alignas(64) LaneCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
    /// Tracer generation this worker lane has observed (see the detach
    /// handshake in set_sched_tracer): published at the top of every
    /// worker_main iteration, read by the detaching thread.
    std::atomic<std::uint64_t> sched_seen{0};
  };

  /// Single-writer increment: every counter (and steal-matrix row) is
  /// written only by its owning lane, so a plain relaxed load+store is a
  /// correct atomic increment here and avoids the lock-prefixed RMW a
  /// fetch_add would cost on the per-chunk hot path (gated by bench_s1).
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  /// Published tracer state: immutable once the atomic pointer flips, so
  /// lanes read it without locks.  Retired states stay alive for the pool's
  /// lifetime (a handful of small structs at most).
  struct SchedState {
    obs::Tracer trace{};
    std::chrono::steady_clock::time_point epoch{};
    int lane_base = 0;
  };

  [[nodiscard]] static double stamp(
      const SchedState& s, std::chrono::steady_clock::time_point t) noexcept {
    return std::chrono::duration<double>(t - s.epoch).count();
  }
  [[nodiscard]] static std::uint64_t elapsed_ns(
      std::chrono::steady_clock::time_point a,
      std::chrono::steady_clock::time_point b) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  }

  void run_chunk(Chunk* c, int lane) {
    const SchedState* s = sched_.load(std::memory_order_acquire);
    bump(counters_[static_cast<std::size_t>(lane)].tasks);
    if (c->detached) {
      // Detached task: the body signals its own completion, and the owner
      // may recycle (re-arm/re-post) or destroy the Task the instant that
      // signal lands — so invoking the body must be the pool's final access
      // to the chunk and its state.  No remaining-counter RMW afterwards
      // (that is the use-after-free the loop path would have here), and no
      // wake either: nothing inside the pool ever waits on a detached task.
      // The trace emission below touches only locals copied out beforehand.
      const LoopState& st = *c->state;
      if (s) {
        const std::size_t lo = c->lo, hi = c->hi;
        const auto t0 = std::chrono::steady_clock::now();
        st.invoke(st.body, lo, hi, lane);
        const auto t1 = std::chrono::steady_clock::now();
        s->trace.task_run(s->lane_base + lane, stamp(*s, t1),
                          elapsed_ns(t0, t1), hi - lo);
        return;
      }
      st.invoke(st.body, c->lo, c->hi, lane);
      return;
    }
    LoopState& st = *c->state;
    const auto t0 =
        s ? std::chrono::steady_clock::now()
          : std::chrono::steady_clock::time_point{};
    try {
      st.invoke(st.body, c->lo, c->hi, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.error_mutex);
      if (!st.has_error || c->index < st.error_index) {
        st.error = std::current_exception();
        st.error_index = c->index;
        st.has_error = true;
      }
    }
    if (s) {
      const auto t1 = std::chrono::steady_clock::now();
      s->trace.task_run(s->lane_base + lane, stamp(*s, t1), elapsed_ns(t0, t1),
                        c->hi - c->lo);
    }
    // After this decrement `st` may be destroyed by the submitting thread;
    // completion wake-up goes through pool-owned state only.
    if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
      wake_cv_.notify_all();
    }
  }

  /// Pop own deque first (LIFO, cache-warm), then sweep victims round-robin.
  [[nodiscard]] Chunk* find_work(int lane) {
    Chunk* c = nullptr;
    auto& mine = *deques_[static_cast<std::size_t>(lane)];
    if (mine.pop(&c)) return c;
    const SchedState* s = sched_.load(std::memory_order_acquire);
    const auto t0 =
        s ? std::chrono::steady_clock::now()
          : std::chrono::steady_clock::time_point{};
    LaneCounters& ctr = counters_[static_cast<std::size_t>(lane)];
    for (std::size_t i = 1; i < lanes_; ++i) {
      const std::size_t victim =
          (static_cast<std::size_t>(lane) + i) % lanes_;
      if (deques_[victim]->steal(&c)) {
        bump(ctr.steals);
        bump(steal_matrix_[static_cast<std::size_t>(lane) * matrix_stride_ +
                           victim]);
        if (s) {
          const auto t1 = std::chrono::steady_clock::now();
          s->trace.steal(s->lane_base + lane, stamp(*s, t1),
                         s->lane_base + static_cast<int>(victim),
                         elapsed_ns(t0, t1));
        }
        return c;
      }
    }
    bump(ctr.steal_failures);
    if (s) {
      const auto t1 = std::chrono::steady_clock::now();
      s->trace.steal(s->lane_base + lane, stamp(*s, t1), /*victim=*/-1,
                     elapsed_ns(t0, t1));
    }
    return nullptr;
  }

  /// Submitting thread participates until every chunk of `st` settled.
  void help_until_done(LoopState& st, int lane) {
    LaneCounters& ctr = counters_[static_cast<std::size_t>(lane)];
    while (st.remaining.load(std::memory_order_acquire) != 0) {
      if (Chunk* c = find_work(lane)) {
        run_chunk(c, lane);
        continue;
      }
      const SchedState* s = sched_.load(std::memory_order_acquire);
      auto t0 = std::chrono::steady_clock::time_point{};
      {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        const std::uint64_t seen = work_epoch_;
        if (st.remaining.load(std::memory_order_acquire) == 0) return;
        bump(ctr.parks);
        if (s) t0 = std::chrono::steady_clock::now();
        wake_cv_.wait(lock, [&] { return work_epoch_ != seen; });
        bump(ctr.unparks);
      }
      if (s) {
        const auto t1 = std::chrono::steady_clock::now();
        s->trace.lane_park(s->lane_base + lane, stamp(*s, t1),
                           elapsed_ns(t0, t1));
      }
    }
  }

  void worker_main(int lane) {
    tls_binding() = Binding{this, lane};
    LaneCounters& ctr = counters_[static_cast<std::size_t>(lane)];
    for (;;) {
      // Detach handshake: acknowledge the tracer generation before this
      // iteration's sched_ loads.  Acquire on the generation orders the
      // detacher's null store before every sched_ load below it, and the
      // release publish lets the detacher order this lane's *previous*
      // iteration emissions before set_sched_tracer returns.  Uncontended
      // lane-private line: one shared read + one private store per burst.
      ctr.sched_seen.store(sched_gen_.load(std::memory_order_acquire),
                           std::memory_order_release);
      if (Chunk* c = find_work(lane)) {
        run_chunk(c, lane);
        continue;
      }
      const SchedState* s = sched_.load(std::memory_order_acquire);
      auto t0 = std::chrono::steady_clock::time_point{};
      bool stop = false;
      {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        const std::uint64_t seen = work_epoch_;
        if (stopping_) return;
        bump(ctr.parks);
        if (s) t0 = std::chrono::steady_clock::now();
        wake_cv_.wait(lock, [&] { return work_epoch_ != seen || stopping_; });
        bump(ctr.unparks);
        stop = stopping_;
      }
      if (s) {
        const auto t1 = std::chrono::steady_clock::now();
        s->trace.lane_park(s->lane_base + lane, stamp(*s, t1),
                           elapsed_ns(t0, t1));
      }
      if (stop) return;
    }
  }

  std::size_t lanes_;
  std::size_t matrix_stride_;  ///< matrix row stride, cache-line padded
  std::unique_ptr<LaneCounters[]> counters_;  ///< per-lane, padded (see above)
  /// lanes x matrix_stride_ relaxed cells, [thief * matrix_stride_ + victim];
  /// each row written only by its thief, rows padded apart (see bump()).
  std::unique_ptr<std::atomic<std::uint64_t>[]> steal_matrix_;
  std::vector<std::unique_ptr<StealDeque<Chunk*>>> deques_;
  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;  ///< serializes external (unbound) submitters

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::uint64_t work_epoch_ = 0;  ///< guarded by wake_mutex_
  bool stopping_ = false;         ///< guarded by wake_mutex_

  std::atomic<const SchedState*> sched_{nullptr};  ///< published tracer state
  std::atomic<std::uint64_t> sched_gen_{0};  ///< detach-handshake generation
  std::mutex sched_states_mutex_;
  std::vector<std::unique_ptr<SchedState>> sched_states_;  ///< retired states
};

}  // namespace pga::exec
