#pragma once
// Work-stealing thread pool: the wall-clock execution backend.
//
// pga::sim answers "how would this algorithm scale?" with virtual time on a
// single thread; this pool answers "how fast does it actually run?" on real
// cores.  The design goal is the bulk-synchronous `parallel_for` that the GA
// hot paths need (evaluate a population, step a set of demes), not a general
// task graph:
//
//   * one Chase–Lev deque per *lane*.  Lane 0 belongs to the caller of
//     `parallel_for`, lanes 1..threads-1 to dedicated workers.  The caller
//     does not block waiting for the loop — it binds lane 0 and helps, so
//     `threads=n` really means n cores chewing on chunks.
//   * chunks are pushed to the submitting lane's own deque and spread by
//     stealing.  Uniform loops never migrate work (each lane steals once and
//     then owns a contiguous range); skewed loops rebalance automatically.
//   * `parallel_for` is re-entrant: a body that calls back into the pool
//     runs the nested loop on its own lane's deque, so nesting cannot
//     deadlock (tested in test_exec.cpp).
//   * exceptions: the lowest-index throwing chunk wins and is rethrown on
//     the caller after every chunk settled, so a throwing loop behaves like
//     its sequential equivalent (deterministically, regardless of which
//     worker ran the chunk).
//
// Determinism contract: the pool never touches RNG state and never reorders
// *what* is computed, only *where*.  Callers that keep per-index work pure
// (fitness evaluation) or key parallelism by stable indices (deme id via
// Rng::split) get byte-identical results at any thread count.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "steal_deque.hpp"

namespace pga::exec {

/// Monotonic pool counters, mirrored into obs::MetricsRegistry on demand.
struct PoolStats {
  std::uint64_t tasks_executed = 0;  ///< chunks run (by workers or helpers)
  std::uint64_t steals = 0;          ///< successful deque steals
  std::uint64_t steal_failures = 0;  ///< full victim sweeps that found nothing
};

class ThreadPool {
 public:
  /// `threads` = total lanes incl. the caller; clamped to >= 1.  threads=1
  /// spawns no workers at all — parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads)
      : lanes_(threads == 0 ? 1 : threads) {
    deques_.reserve(lanes_);
    for (std::size_t i = 0; i < lanes_; ++i)
      deques_.push_back(std::make_unique<StealDeque<Chunk*>>());
    workers_.reserve(lanes_ > 0 ? lanes_ - 1 : 0);
    for (std::size_t lane = 1; lane < lanes_; ++lane)
      workers_.emplace_back([this, lane] { worker_main(static_cast<int>(lane)); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      stopping_ = true;
      ++work_epoch_;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t concurrency() const noexcept { return lanes_; }

  /// Chunked parallel loop over [begin, end).  `body(lo, hi, lane)` runs on
  /// some lane in [0, concurrency()); chunk boundaries are a pure function
  /// of (range, grain, concurrency), never of scheduling.  Blocks until the
  /// whole range ran; rethrows the lowest-index chunk's exception, if any.
  template <class Body>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Body&& body) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t num_chunks = (n + grain - 1) / grain;
    if (lanes_ == 1 || num_chunks == 1) {
      body(begin, end, bound_lane());
      tasks_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    LoopState st;
    st.body = &body;
    st.invoke = [](void* b, std::size_t lo, std::size_t hi, int lane) {
      (*static_cast<Body*>(b))(lo, hi, lane);
    };
    st.remaining.store(num_chunks, std::memory_order_relaxed);

    std::vector<Chunk> chunks(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      chunks[c].state = &st;
      chunks[c].lo = begin + c * grain;
      chunks[c].hi = std::min(end, begin + (c + 1) * grain);
      chunks[c].index = c;
    }

    SubmitGuard submit(*this);
    const int my_lane = submit.lane();
    // Reverse push: the owner pops LIFO, so chunk 0 comes off first and the
    // caller's lane walks the range front-to-back while thieves take the
    // tail — the same front/back split a static partition would give.
    for (std::size_t c = num_chunks; c-- > 0;)
      deques_[static_cast<std::size_t>(my_lane)]->push(&chunks[c]);
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
    }
    wake_cv_.notify_all();

    help_until_done(st, my_lane);

    if (st.error) std::rethrow_exception(st.error);
  }

  [[nodiscard]] PoolStats stats() const noexcept {
    PoolStats s;
    s.tasks_executed = tasks_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.steal_failures = steal_failures_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Chunk/LoopState are defined up here (not with the rest of the private
  // machinery below) because the public Task handle embeds them by value.
  struct LoopState {
    void* body = nullptr;
    void (*invoke)(void*, std::size_t, std::size_t, int) = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = 0;
    bool has_error = false;
  };

  struct Chunk {
    LoopState* state = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t index = 0;
    bool detached = false;  ///< Task chunk: body runs as the last touch
  };

 public:
  // ---- Detached one-shot tasks --------------------------------------------
  //
  // parallel_for is a barrier by construction: the submitter helps until the
  // whole range settled.  The async evaluation pipeline needs the opposite —
  // post work and keep running — so a Task is a caller-owned chunk that some
  // worker steals and runs exactly once, while the poster never blocks.
  //
  //   * storage: the Task object (and everything its body touches) must stay
  //     alive until the body has finished.  Tasks are recyclable: re-arm()
  //     and re-post() after completion (the pipeline pools them per batch).
  //   * completion: the pool only guarantees execution.  Signalling is the
  //     body's job (push to your own completion queue as the last action).
  //     Invoking the body is the pool's LAST access to the Task — no
  //     bookkeeping touches it afterwards — so the owner may destroy or
  //     recycle the Task the instant the body's signal lands.  This also
  //     means bodies must not let exceptions escape (there is nowhere safe
  //     to park one): capture them into caller-owned state and report at
  //     fold time; a throwing detached body terminates the process.
  //   * queueing: posts land in lane 0's deque under submit_mutex_ — the
  //     same serialization an external parallel_for caller uses, so the
  //     Chase–Lev owner-only push invariant holds — and are consumed by
  //     worker *steals* only.  A post made while another thread runs a
  //     parallel_for blocks until that loop finishes (loops hold the mutex).
  //   * progress: requires at least one worker (concurrency() > 1).  With a
  //     single-lane pool nothing ever steals, so callers must run the body
  //     inline instead of posting.

  /// Caller-owned handle for one detached task.  Not movable (workers hold
  /// its address); arm() before every post().
  class Task {
   public:
    using Fn = void (*)(void* ctx, int lane);

    Task() {
      chunk_.state = &st_;
      chunk_.detached = true;
      st_.body = this;
      st_.invoke = [](void* self, std::size_t, std::size_t, int lane) {
        Task* t = static_cast<Task*>(self);
        t->fn_(t->ctx_, lane);
      };
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    /// Binds the body for the next post().  Must not be called between a
    /// post() and the body having signalled completion.  No counter to
    /// reset: detached chunks bypass the loop bookkeeping entirely (see
    /// run_chunk), which is what makes re-arming a just-completed Task safe.
    void arm(Fn fn, void* ctx) noexcept {
      fn_ = fn;
      ctx_ = ctx;
    }

   private:
    friend class ThreadPool;
    Fn fn_ = nullptr;
    void* ctx_ = nullptr;
    LoopState st_;
    Chunk chunk_;
  };

  /// Enqueues an armed task; some worker will run it exactly once.  The
  /// caller must have checked concurrency() > 1 (see progress note above)
  /// and keep `t` alive until the body ran.
  void post(Task& t) {
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      deques_[0]->push(&t.chunk_);
    }
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
    }
    wake_cv_.notify_all();
  }

 private:
  /// thread_local binding of this thread to a pool lane, stacked so nested
  /// parallel_for calls restore the outer binding on unwind.
  struct Binding {
    ThreadPool* pool = nullptr;
    int lane = 0;
  };
  static Binding& tls_binding() {
    thread_local Binding b;
    return b;
  }

  [[nodiscard]] int bound_lane() const {
    const Binding& b = tls_binding();
    return b.pool == this ? b.lane : 0;
  }

  /// An external (unbound) caller claims lane 0 for the loop's duration,
  /// serialized by submit_mutex_.  A bound thread (worker, or any thread
  /// inside a nested parallel_for) keeps its lane and skips the mutex —
  /// that is what makes nesting deadlock-free.
  class SubmitGuard {
   public:
    explicit SubmitGuard(ThreadPool& p) : pool_(p), saved_(tls_binding()) {
      external_ = saved_.pool != &p;
      if (external_) {
        p.submit_mutex_.lock();
        tls_binding() = Binding{&p, 0};
      }
    }
    ~SubmitGuard() {
      if (external_) {
        tls_binding() = saved_;
        pool_.submit_mutex_.unlock();
      }
    }
    SubmitGuard(const SubmitGuard&) = delete;
    SubmitGuard& operator=(const SubmitGuard&) = delete;

    [[nodiscard]] int lane() const { return tls_binding().lane; }

   private:
    ThreadPool& pool_;
    Binding saved_;
    bool external_;
  };

  void run_chunk(Chunk* c, int lane) {
    if (c->detached) {
      // Detached task: the body signals its own completion, and the owner
      // may recycle (re-arm/re-post) or destroy the Task the instant that
      // signal lands — so invoking the body must be the pool's final access
      // to the chunk and its state.  No remaining-counter RMW afterwards
      // (that is the use-after-free the loop path would have here), and no
      // wake either: nothing inside the pool ever waits on a detached task.
      tasks_.fetch_add(1, std::memory_order_relaxed);
      const LoopState& st = *c->state;
      st.invoke(st.body, c->lo, c->hi, lane);
      return;
    }
    LoopState& st = *c->state;
    try {
      st.invoke(st.body, c->lo, c->hi, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.error_mutex);
      if (!st.has_error || c->index < st.error_index) {
        st.error = std::current_exception();
        st.error_index = c->index;
        st.has_error = true;
      }
    }
    tasks_.fetch_add(1, std::memory_order_relaxed);
    // After this decrement `st` may be destroyed by the submitting thread;
    // completion wake-up goes through pool-owned state only.
    if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      ++work_epoch_;
      wake_cv_.notify_all();
    }
  }

  /// Pop own deque first (LIFO, cache-warm), then sweep victims round-robin.
  [[nodiscard]] Chunk* find_work(int lane) {
    Chunk* c = nullptr;
    auto& mine = *deques_[static_cast<std::size_t>(lane)];
    if (mine.pop(&c)) return c;
    for (std::size_t i = 1; i < lanes_; ++i) {
      const std::size_t victim =
          (static_cast<std::size_t>(lane) + i) % lanes_;
      if (deques_[victim]->steal(&c)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return c;
      }
    }
    steal_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Submitting thread participates until every chunk of `st` settled.
  void help_until_done(LoopState& st, int lane) {
    while (st.remaining.load(std::memory_order_acquire) != 0) {
      if (Chunk* c = find_work(lane)) {
        run_chunk(c, lane);
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex_);
      const std::uint64_t seen = work_epoch_;
      if (st.remaining.load(std::memory_order_acquire) == 0) return;
      wake_cv_.wait(lock, [&] { return work_epoch_ != seen; });
    }
  }

  void worker_main(int lane) {
    tls_binding() = Binding{this, lane};
    for (;;) {
      if (Chunk* c = find_work(lane)) {
        run_chunk(c, lane);
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex_);
      const std::uint64_t seen = work_epoch_;
      if (stopping_) return;
      wake_cv_.wait(lock, [&] { return work_epoch_ != seen || stopping_; });
      if (stopping_) return;
    }
  }

  std::size_t lanes_;
  std::vector<std::unique_ptr<StealDeque<Chunk*>>> deques_;
  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;  ///< serializes external (unbound) submitters

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::uint64_t work_epoch_ = 0;  ///< guarded by wake_mutex_
  bool stopping_ = false;         ///< guarded by wake_mutex_

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_failures_{0};
};

}  // namespace pga::exec
