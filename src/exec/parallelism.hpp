#pragma once
// Parallelism: the handle hot paths take to run on real cores.
//
// Mirrors the obs::Tracer idiom — a small copyable value that is cheap to
// pass everywhere and degrades to "do nothing special" when empty.  A
// default-constructed (or threads=1) Parallelism runs every `for_range`
// inline on the caller with zero pool overhead, so sequential call sites and
// parallel call sites share one code path (measured in BM_EvaluateAllDense:
// the inline executor is within noise of the plain loop).
//
// The handle also owns the wall-clock side of observability: `now()` returns
// seconds since the tracing epoch on a steady clock, and `mark_lanes()` tags
// each pool lane with obs::kWorkerLaneMark so downstream tools (RunReport,
// pga_doctor) know these ranks follow wall-clock — not virtual-time —
// conventions.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "../obs/events.hpp"
#include "../obs/metrics.hpp"
#include "thread_pool.hpp"

namespace pga::exec {

class Parallelism {
 public:
  /// Inline executor: concurrency() == 1, no pool, for_range runs on the
  /// caller.
  Parallelism() = default;

  /// Wall-clock executor backed by `pool` (not owned; must outlive the
  /// handle).
  explicit Parallelism(ThreadPool* pool) noexcept : pool_(pool) {}

  [[nodiscard]] std::size_t concurrency() const noexcept {
    return pool_ ? pool_->concurrency() : 1;
  }
  /// True when work can actually run on more than one core.
  [[nodiscard]] bool parallel() const noexcept { return concurrency() > 1; }
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

  /// Attach a tracer; instrumented loops stamp events with `now()` from this
  /// moment on (the epoch rebases so traces start near t=0).  The pool gets
  /// the same tracer and epoch so its scheduler events (kTaskRun / kSteal /
  /// kLanePark) land on the same timeline; mark_lanes() re-publishes with
  /// the lane base when ranks are offset.
  void set_tracer(obs::Tracer trace) {
    trace_ = trace;
    epoch_ = std::chrono::steady_clock::now();
    if (pool_) pool_->set_sched_tracer(trace_, epoch_, /*lane_base=*/0);
  }
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return trace_; }

  /// Wall seconds since the tracing epoch.
  [[nodiscard]] double now() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Tag every pool lane `lane_base .. lane_base+concurrency()-1` as a
  /// wall-clock worker lane.  Call once after set_tracer, before the run.
  /// Re-publishes the pool's scheduler tracer with `lane_base` so kTaskRun /
  /// kSteal / kLanePark ranks line up with the marked lanes.
  void mark_lanes(int lane_base = 0) const {
    if (!trace_) return;
    if (pool_) pool_->set_sched_tracer(trace_, epoch_, lane_base);
    const double t = now();
    for (std::size_t l = 0; l < concurrency(); ++l)
      trace_.mark(lane_base + static_cast<int>(l), t, obs::kWorkerLaneMark);
  }

  /// Publish the pool's counters into `reg` (idempotent: counters are set
  /// to the current totals via registry-owned Counter objects on each call).
  /// Each `pga_exec_*_total` family carries the unlabeled aggregate plus one
  /// `lane="N"` series per pool lane, so scrapes see both the fleet total
  /// and the per-lane fairness breakdown.
  void bind_metrics(obs::MetricsRegistry& reg) const {
    if (!pool_) return;
    const PoolStats s = pool_->stats();
    auto sync = [&reg](const char* name, const char* help, std::uint64_t total,
                       const obs::MetricLabels& labels = {}) {
      obs::Counter& c = reg.counter(name, help, labels);
      const std::uint64_t cur = c.value();
      if (total > cur) c.inc(total - cur);
    };
    sync("pga_exec_tasks_total", "pool chunks run", s.tasks_executed);
    sync("pga_exec_steals_total", "successful deque steals", s.steals);
    sync("pga_exec_steal_failures_total", "failed full steal sweeps",
         s.steal_failures);
    for (std::size_t l = 0; l < s.lanes.size(); ++l) {
      const obs::MetricLabels lane{{"lane", std::to_string(l)}};
      sync("pga_exec_tasks_total", "pool chunks run",
           s.lanes[l].tasks_executed, lane);
      sync("pga_exec_steals_total", "successful deque steals",
           s.lanes[l].steals, lane);
      sync("pga_exec_steal_failures_total", "failed full steal sweeps",
           s.lanes[l].steal_failures, lane);
    }
  }

  /// Chunked loop over [begin, end): `body(lo, hi, lane)`.  grain=0 picks
  /// max(1, n / (4 * concurrency())) — ~4 chunks per lane, enough slack for
  /// stealing to rebalance skew without drowning small loops in scheduling.
  /// Chunk boundaries depend only on (range, grain, concurrency), so *what*
  /// each chunk computes is deterministic; only placement varies.
  template <class Body>
  void for_range(std::size_t begin, std::size_t end, std::size_t grain,
                 Body&& body) const {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    if (!parallel()) {
      body(begin, end, 0);
      return;
    }
    if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * concurrency()));
    pool_->parallel_for(begin, end, grain, static_cast<Body&&>(body));
  }

 private:
  ThreadPool* pool_ = nullptr;
  obs::Tracer trace_{};
  std::chrono::steady_clock::time_point epoch_{std::chrono::steady_clock::now()};
};

}  // namespace pga::exec
