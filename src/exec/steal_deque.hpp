#pragma once
// Chase–Lev work-stealing deque (Chase & Lev 2005, with the C11-atomics
// formulation of Lê, Pop, Cohen & Zappa Nardelli 2013).
//
// One deque per pool lane: the owning thread pushes and pops at the bottom
// (LIFO, so a worker keeps chewing on the cache-warm end of its own range),
// thieves take from the top (FIFO, so they grab the work the owner will get
// to last).  The only cross-thread contention is the CAS on `top`, and only
// when owner and thief race for the final element.
//
// Two deliberate deviations from the letter of the paper, both for the
// ThreadSanitizer CI gate and for simplicity over raw throughput (chunked
// parallel_for amortizes every deque operation over a grain of work):
//
//   * control words use seq_cst operations instead of standalone fences —
//     TSan does not model `atomic_thread_fence`, and the fence-free variant
//     is the one whose proof the 2013 paper actually machine-checked;
//   * grown buffers are retired to an owner-only list instead of being
//     freed, so a thief holding a stale buffer pointer can never read
//     reclaimed memory.  A deque's footprint is bounded by 2x its high-water
//     mark, which for pool chunks is a few pointers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace pga::exec {

/// Single-owner, multi-thief deque of pointers.  `push`/`pop` may be called
/// only by the owning thread; `steal` by any thread.
template <class T>
class StealDeque {
  static_assert(std::is_pointer_v<T>,
                "StealDeque stores pointers (entries must load atomically)");

 public:
  explicit StealDeque(std::size_t capacity = 64) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    auto buf = std::make_unique<Buffer>(cap);
    buffer_.store(buf.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(buf));
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: append at the bottom, growing the ring when full.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) buf = grow(buf, t, b);
    buf->put(b, item);
    // seq_cst publish: a thief that observes the new bottom also observes
    // the slot write above (and stays ordered against pop's bottom store).
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: take the most recently pushed item.  Returns false when
  /// empty (or when a thief won the race for the last item).
  bool pop(T* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      T item = buf->get(b);
      if (t == b) {
        // Last element: race the thieves with a CAS on top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_seq_cst);
        if (!won) return false;
      }
      *out = item;
      return true;
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return false;
  }

  /// Any thread: take the oldest item.  Returns false when empty or when
  /// another thief (or the owner, on the last item) won the CAS — callers
  /// treat both as "try the next victim".
  bool steal(T* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return false;
    *out = item;
    return true;
  }

  /// Approximate (racy) emptiness — good enough for "is it worth visiting
  /// this victim", never for correctness decisions.
  [[nodiscard]] bool empty_hint() const noexcept {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t n)
        : capacity(n), mask(n - 1), slots(std::make_unique<std::atomic<T>[]>(n)) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    [[nodiscard]] T get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(v,
                                                      std::memory_order_relaxed);
    }
  };

  /// Owner only: double the ring, copying the live window [t, b).  The old
  /// buffer stays alive in `retired_` (in-flight thieves may still read it;
  /// the values at indices < b are identical in both buffers).
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    Buffer* raw = fresh.get();
    buffer_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(fresh));
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> retired_;  ///< owner-only
};

}  // namespace pga::exec
