#pragma once
// Network cost model for the simulated cluster.
//
// A message of b bytes sent at virtual time t arrives at
//   t + latency + b / bandwidth          (the classic alpha-beta model).
// Presets capture the interconnect families the survey's computing-trends
// section names: shared-memory SMP buses, Fast/Gigabit Ethernet Beowulfs,
// Myrinet clusters, and Internet-grade WANs (the DREAM setting).

#include <cstddef>
#include <string>

namespace pga::sim {

struct NetworkModel {
  double latency_s = 50e-6;      ///< per-message latency (seconds)
  double bandwidth_Bps = 125e6;  ///< bytes per second
  std::string name = "gigabit-ethernet";

  /// Wire time for a payload of `bytes`.
  [[nodiscard]] double transfer_time(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }

  // --- Presets (order-of-magnitude figures for the 2000-2004 hardware the
  // survey describes; see EXPERIMENTS.md for sources/rationale) -------------

  /// SMP shared-memory transfer: sub-microsecond latency, multi-GB/s copies.
  [[nodiscard]] static NetworkModel shared_memory() {
    return {0.5e-6, 4e9, "shared-memory"};
  }
  /// 100 Mbit switched Ethernet (classic Beowulf).
  [[nodiscard]] static NetworkModel fast_ethernet() {
    return {120e-6, 12.5e6, "fast-ethernet"};
  }
  /// Gigabit Ethernet cluster.
  [[nodiscard]] static NetworkModel gigabit_ethernet() {
    return {50e-6, 125e6, "gigabit-ethernet"};
  }
  /// Myrinet: the low-latency cluster interconnect of the era.
  [[nodiscard]] static NetworkModel myrinet() {
    return {8e-6, 250e6, "myrinet"};
  }
  /// Internet/WAN grid computing (DREAM-style peer-to-peer).
  [[nodiscard]] static NetworkModel internet_wan() {
    return {40e-3, 1.25e6, "internet-wan"};
  }
};

}  // namespace pga::sim
