#include "sim/cluster.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace pga::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct PendingMessage {
  double arrival = 0.0;
  /// The message's per-run msg_id (sender-minted, see SimTransport::send):
  /// unique across ranks and ordered by (send index, sender rank), so it
  /// both breaks arrival ties and uniquely correlates send with recv.
  std::uint64_t seq = 0;
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

enum class St { kRunning, kWaiting, kDone, kDead };

struct Node {
  double clock = 0.0;
  double speed = 1.0;
  double fail_at = kInf;
  St st = St::kRunning;
  std::vector<PendingMessage> mailbox;  ///< sorted by (arrival, seq)

  // Published while the node sleeps inside a receive, so peers can (a) elect
  // the next event owner when everyone is waiting and (b) refresh the key
  // when a matching message lands in the sleeping node's mailbox.
  int w_source = comm::Transport::kAnySource;
  int w_tag = comm::Transport::kAnyTag;
  double wait_deadline = kInf;
  double wait_key = kInf;

  double compute_time = 0.0;
  std::uint64_t next_send = 0;  ///< this rank's 0-based send index (mints msg_ids)
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  double end_time = 0.0;
};

struct World {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Node> nodes;
  const SimConfig* cfg = nullptr;
  int alive = 0;    ///< kRunning + kWaiting
  int waiting = 0;  ///< kWaiting

  [[nodiscard]] bool msg_matches(const PendingMessage& m, int source, int tag) const {
    return (source == comm::Transport::kAnySource || m.source == source) &&
           (tag == comm::Transport::kAnyTag || m.tag == tag);
  }

  /// Min clock over alive nodes other than `self` (+inf if none).
  [[nodiscard]] double others_min_clock(int self) const {
    double lo = kInf;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (static_cast<int>(i) == self) continue;
      const auto& n = nodes[i];
      if (n.st == St::kRunning || n.st == St::kWaiting)
        lo = std::min(lo, n.clock);
    }
    return lo;
  }
};

class SimTransport final : public comm::Transport {
 public:
  SimTransport(World& world, int rank)
      : world_(world), rank_(rank), tr_(world.cfg->trace) {}

  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int world_size() const noexcept override {
    return static_cast<int>(world_.nodes.size());
  }

  std::uint64_t send(int dest, int tag,
                     std::vector<std::uint8_t> payload) override {
    std::unique_lock<std::mutex> lock(world_.mutex);
    auto& me = self();
    check_death(me);
    // Per-message handling is CPU work, but traced under its own span name
    // so the causal profiler can tell comm handling from algorithm compute.
    advance(me, world_.cfg->send_overhead_s * me.speed, "send");
    const double arrival =
        me.clock + world_.cfg->network.transfer_time(payload.size());
    ++me.messages_sent;
    me.bytes_sent += payload.size();
    // Minted from this rank's own send index so the id is a pure function of
    // the (deterministic) virtual-time execution, not of which thread won the
    // world mutex — two runs of the same sim must dump byte-identical traces.
    // Unique across ranks, monotone per sender, 1-based (0 = uncorrelated).
    const std::uint64_t id =
        me.next_send++ * world_.nodes.size() + static_cast<std::uint64_t>(rank_) + 1;
    tr_.message_sent(rank_, me.clock, dest, tag, payload.size(), id);

    auto& peer = world_.nodes[static_cast<std::size_t>(dest)];
    if (peer.st == St::kDone || peer.st == St::kDead) return id;  // dropped
    PendingMessage msg{arrival, id, rank_, tag, std::move(payload)};
    auto pos = std::upper_bound(
        peer.mailbox.begin(), peer.mailbox.end(), msg,
        [](const PendingMessage& a, const PendingMessage& b) {
          return a.arrival != b.arrival ? a.arrival < b.arrival : a.seq < b.seq;
        });
    peer.mailbox.insert(pos, std::move(msg));
    // A sleeping receiver's event key may have moved earlier.
    refresh_wait_key(dest);
    world_.cv.notify_all();
    return id;
  }

  [[nodiscard]] std::optional<comm::Message> recv(int source, int tag) override {
    return recv_impl(source, tag, kInf, /*is_try=*/false);
  }

  [[nodiscard]] std::optional<comm::Message> try_recv(int source, int tag) override {
    return recv_impl(source, tag, 0.0, /*is_try=*/true);
  }

  [[nodiscard]] std::optional<comm::Message> recv_timeout(double seconds,
                                                          int source,
                                                          int tag) override {
    return recv_impl(source, tag, seconds, /*is_try=*/false);
  }

  void compute(double seconds) override {
    std::unique_lock<std::mutex> lock(world_.mutex);
    auto& me = self();
    check_death(me);
    advance(me, seconds);
    world_.cv.notify_all();
  }

  [[nodiscard]] double now() const override {
    std::unique_lock<std::mutex> lock(world_.mutex);
    return world_.nodes[static_cast<std::size_t>(rank_)].clock;
  }

 private:
  [[nodiscard]] Node& self() {
    return world_.nodes[static_cast<std::size_t>(rank_)];
  }

  void check_death(Node& me) {
    if (me.clock >= me.fail_at) die(me);
  }

  [[noreturn]] void die(Node& me) {
    me.clock = me.fail_at;
    tr_.node_failure(rank_, me.fail_at);
    throw comm::NodeFailure(rank_);
  }

  /// Advances virtual time by `seconds` of reference work (scaled by node
  /// speed); dies mid-advance if the failure time is crossed.  `label` names
  /// the emitted span ("compute" for algorithm work, "send" for per-message
  /// handling); both count as CPU time (obs::is_cpu_span).
  void advance(Node& me, double seconds, const char* label = "compute") {
    const double duration = seconds / me.speed;
    if (me.clock + duration >= me.fail_at) {
      if (me.fail_at > me.clock) {
        tr_.span_begin(rank_, me.clock, label);
        tr_.span_end(rank_, me.fail_at, label);
      }
      me.compute_time += std::max(0.0, me.fail_at - me.clock);
      die(me);
    }
    if (duration > 0.0) {
      tr_.span_begin(rank_, me.clock, label);
      tr_.span_end(rank_, me.clock + duration, label);
    }
    me.clock += duration;
    me.compute_time += duration;
  }

  /// Earliest message in `node`'s mailbox matching (source, tag); mailbox is
  /// kept sorted so this is the first match.
  [[nodiscard]] std::vector<PendingMessage>::iterator earliest_match(
      Node& node, int source, int tag) {
    for (auto it = node.mailbox.begin(); it != node.mailbox.end(); ++it)
      if (world_.msg_matches(*it, source, tag)) return it;
    return node.mailbox.end();
  }

  /// Recomputes and publishes the sleeping node's event key:
  /// min(time it could take its earliest matching message, its deadline, its
  /// failure time).  Caller holds the world mutex.
  void refresh_wait_key(int rank) {
    auto& n = world_.nodes[static_cast<std::size_t>(rank)];
    if (n.st != St::kWaiting) return;
    double key = std::min(n.wait_deadline, n.fail_at);
    for (const auto& m : n.mailbox) {
      if (world_.msg_matches(m, n.w_source, n.w_tag)) {
        key = std::min(key, std::max(n.clock, m.arrival));
        break;
      }
    }
    n.wait_key = key;
  }

  [[nodiscard]] std::optional<comm::Message> recv_impl(int source, int tag,
                                                       double timeout,
                                                       bool is_try) {
    std::unique_lock<std::mutex> lock(world_.mutex);
    auto& me = self();
    check_death(me);
    const double deadline = is_try ? me.clock : (timeout == kInf ? kInf : me.clock + timeout);

    for (;;) {
      // 1. A message that has already arrived: take it.
      auto it = earliest_match(me, source, tag);
      if (it != me.mailbox.end() && it->arrival <= me.clock) {
        return take(me, it);
      }
      const double t_msg = (it != me.mailbox.end()) ? it->arrival : kInf;

      // 2. Conclude immediately when every other alive rank has passed the
      // point we would act at (conservative rule; see header comment).
      if (is_try) {
        if (world_.others_min_clock(rank_) >= me.clock) return std::nullopt;
      } else {
        const double act = std::min(t_msg, deadline);
        if (act < kInf && world_.others_min_clock(rank_) >= act)
          return fire(me, source, tag, t_msg, deadline);
      }

      // 3. Everyone is (about to be) waiting: pure discrete-event step — the
      // waiter owning the globally smallest event key fires; ties break by
      // rank.  If every key is infinite the system is quiescent and ranks are
      // released smallest-rank-first with a shutdown nullopt.
      me.w_source = source;
      me.w_tag = tag;
      me.wait_deadline = is_try ? me.clock : deadline;
      me.st = St::kWaiting;
      refresh_wait_key(rank_);
      ++world_.waiting;

      if (world_.waiting == world_.alive) {
        double best_key = me.wait_key;
        int owner = rank_;
        for (std::size_t i = 0; i < world_.nodes.size(); ++i) {
          const auto& n = world_.nodes[i];
          if (n.st != St::kWaiting || static_cast<int>(i) == rank_) continue;
          if (n.wait_key < best_key ||
              (n.wait_key == best_key && static_cast<int>(i) < owner)) {
            best_key = n.wait_key;
            owner = static_cast<int>(i);
          }
        }
        if (owner == rank_) {
          --world_.waiting;
          me.st = St::kRunning;
          if (best_key == kInf) return std::nullopt;  // quiescent: shut down
          if (is_try) return std::nullopt;
          return fire(me, source, tag, t_msg, deadline);
        }
        // Someone else owns the next event; make sure they are awake.
        world_.cv.notify_all();
      }

      world_.cv.wait(lock);
      --world_.waiting;
      me.st = St::kRunning;
      me.wait_key = kInf;
    }
  }

  /// Fires this rank's pending receive event: advance to the message arrival
  /// or the deadline, whichever is earlier, honoring failure injection.
  [[nodiscard]] std::optional<comm::Message> fire(Node& me, int source, int tag,
                                                  double t_msg,
                                                  double deadline) {
    const double target = std::min(t_msg, deadline);
    if (target >= me.fail_at) {
      me.clock = me.fail_at;
      die(me);
    }
    if (target > me.clock) me.clock = target;  // waiting time (not compute)
    world_.cv.notify_all();
    if (t_msg <= deadline) {
      auto it = earliest_match(me, source, tag);
      return take(me, it);
    }
    return std::nullopt;  // timeout
  }

  [[nodiscard]] std::optional<comm::Message> take(
      Node& me, std::vector<PendingMessage>::iterator it) {
    comm::Message out{it->source, it->tag, it->seq, std::move(it->payload)};
    me.mailbox.erase(it);
    tr_.message_recv(rank_, me.clock, out.source, out.tag, out.payload.size(),
                     out.msg_id);
    return out;
  }

  World& world_;
  int rank_;
  obs::Tracer tr_;
};

}  // namespace

SimCluster::SimCluster(SimConfig config) : config_(std::move(config)) {
  if (config_.nodes.empty())
    throw std::invalid_argument("SimCluster needs at least one node");
}

SimCluster::Report SimCluster::run(
    const std::function<void(comm::Transport&)>& process) {
  World world;
  world.cfg = &config_;
  world.nodes.resize(config_.nodes.size());
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    world.nodes[i].speed = config_.nodes[i].speed;
    world.nodes[i].fail_at = config_.nodes[i].fail_at;
  }
  world.alive = static_cast<int>(config_.nodes.size());

  Report report;
  report.ranks.resize(config_.nodes.size());

  std::vector<std::thread> threads;
  threads.reserve(config_.nodes.size());
  for (std::size_t r = 0; r < config_.nodes.size(); ++r) {
    threads.emplace_back([&, r] {
      SimTransport transport(world, static_cast<int>(r));
      auto& rep = report.ranks[r];
      try {
        process(transport);
        rep.completed = true;
      } catch (const comm::NodeFailure&) {
        rep.died = true;
      } catch (const std::exception& e) {
        rep.error = e.what();
      } catch (...) {
        rep.error = "unknown exception";
      }
      std::lock_guard<std::mutex> lock(world.mutex);
      auto& n = world.nodes[r];
      n.st = rep.died ? St::kDead : St::kDone;
      n.end_time = n.clock;
      --world.alive;
      world.cv.notify_all();
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t r = 0; r < world.nodes.size(); ++r) {
    auto& rep = report.ranks[r];
    const auto& n = world.nodes[r];
    rep.end_time = n.end_time;
    rep.compute_time = n.compute_time;
    rep.messages_sent = n.messages_sent;
    rep.bytes_sent = n.bytes_sent;
    report.makespan = std::max(report.makespan, n.end_time);
    report.total_messages += n.messages_sent;
    report.total_bytes += n.bytes_sent;
  }
  return report;
}

}  // namespace pga::sim
