#pragma once
// SimCluster: deterministic virtual-time execution of message-passing
// programs.
//
// Each rank runs its real C++ process function on its own thread, but time is
// *virtual*: `compute(s)` advances the rank's clock by s / node-speed, and a
// message sent at clock t arrives at t + network.transfer_time(bytes).  A
// conservative scheduling rule (a rank may only consume a message or conclude
// a timeout once no other alive rank's clock is behind that point) makes the
// execution equivalent to a sequential discrete-event simulation: the result
// — every message, every timestamp, the final makespan — is a pure function
// of the program and the seed, independent of OS thread interleaving.
//
// This is the substitution for the paper's clusters (DESIGN.md §2): speedup
// is measured as sequential-virtual-time / parallel-virtual-makespan, which
// reproduces the communication/computation trade-offs of the surveyed
// studies on a single-core host.
//
// Failure injection: a rank with `fail_at < inf` dies the moment its clock
// would pass that time; its next transport call throws NodeFailure.  Dead
// ranks drop incoming messages — survivors see only silence, as on a real
// network.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "obs/events.hpp"
#include "sim/network.hpp"

namespace pga::sim {

struct NodeSpec {
  /// Relative CPU speed; compute(s) takes s/speed virtual seconds.
  double speed = 1.0;
  /// Virtual time at which this node dies (infinity = never).
  double fail_at = std::numeric_limits<double>::infinity();
};

struct SimConfig {
  NetworkModel network{};
  std::vector<NodeSpec> nodes;  ///< one entry per rank
  /// CPU cost a sender pays per message (protocol overhead), virtual seconds.
  double send_overhead_s = 1e-6;
  /// Optional event sink.  When set, every rank emits "compute" spans,
  /// message send/recv records and failure events stamped with its virtual
  /// clock, so a run exports to chrome://tracing and audits with
  /// obs::RunReport.  Any obs::EventSink works: the in-memory EventLog, a
  /// bounded FlightRecorder ring, a StreamWriter, or a TeeSink fan-out.
  /// Null (the default) costs one branch per call site.
  obs::EventSink* trace = nullptr;
};

/// Homogeneous configuration helper.
[[nodiscard]] inline SimConfig homogeneous(int ranks, NetworkModel net,
                                           double speed = 1.0) {
  SimConfig cfg;
  cfg.network = net;
  cfg.nodes.assign(static_cast<std::size_t>(ranks), NodeSpec{speed, std::numeric_limits<double>::infinity()});
  return cfg;
}

class SimCluster {
 public:
  explicit SimCluster(SimConfig config);

  struct RankReport {
    bool completed = false;  ///< process returned normally
    bool died = false;       ///< killed by failure injection
    std::string error;       ///< exception text (other than injected death)
    double end_time = 0.0;   ///< rank's virtual clock at exit
    double compute_time = 0.0;  ///< virtual seconds spent in compute()
    std::size_t messages_sent = 0;
    std::size_t bytes_sent = 0;
  };

  struct Report {
    std::vector<RankReport> ranks;
    /// Virtual completion time of the whole program (max over ranks).
    double makespan = 0.0;
    std::size_t total_messages = 0;
    std::size_t total_bytes = 0;

    [[nodiscard]] bool all_completed() const {
      for (const auto& r : ranks)
        if (!r.completed) return false;
      return true;
    }
    /// Total virtual compute across ranks (the "work" term of efficiency).
    [[nodiscard]] double total_compute() const {
      double s = 0.0;
      for (const auto& r : ranks) s += r.compute_time;
      return s;
    }
  };

  /// Runs `process(transport)` on every rank in virtual time and joins.
  Report run(const std::function<void(comm::Transport&)>& process);

  [[nodiscard]] int num_ranks() const noexcept {
    return static_cast<int>(config_.nodes.size());
  }

 private:
  SimConfig config_;
};

}  // namespace pga::sim
