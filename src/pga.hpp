#pragma once
// Umbrella header: pulls in the whole public API of pgalib.
//
// Fine-grained includes compile faster; this header exists for quick
// experiments and example code.  Module map:
//
//   core/      genomes, RNG, operators, engines, scaling, encodings,
//              diversity, local search, adaptive control, checkpoints, traces
//   problems/  benchmark problems across the difficulty classes
//   comm/      message-passing transport, serialization, collectives
//   exec/      work-stealing thread pool for wall-clock parallel execution
//   sim/       deterministic virtual-time cluster simulator
//   parallel/  master-slave, island, cellular, hierarchical, SIM, hybrid
//   multiobj/  Pareto utilities and NSGA-II
//   obs/       event tracing, search-dynamics probes, anomaly diagnosis,
//              causal critical-path profiling, metrics, Chrome-trace +
//              JSON export, run reports
//   theory/    analytic models (sizing, takeover, speedup)
//   workloads/ synthetic application substrates

#include "comm/collectives.hpp"
#include "comm/inproc.hpp"
#include "comm/serialize.hpp"
#include "comm/transport.hpp"
#include "core/adaptive.hpp"
#include "core/async_steady_state.hpp"
#include "core/cellular.hpp"
#include "core/checkpoint.hpp"
#include "core/crossover.hpp"
#include "core/diversity.hpp"
#include "core/encoding.hpp"
#include "core/evolution.hpp"
#include "core/genome.hpp"
#include "core/local_search.hpp"
#include "core/model_ga.hpp"
#include "core/mutation.hpp"
#include "core/population.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"
#include "core/scaling.hpp"
#include "core/selection.hpp"
#include "core/statistics.hpp"
#include "core/termination.hpp"
#include "core/trace.hpp"
#include "exec/async_pipeline.hpp"
#include "exec/parallelism.hpp"
#include "exec/steal_deque.hpp"
#include "exec/thread_pool.hpp"
#include "multiobj/nsga2.hpp"
#include "multiobj/pareto.hpp"
#include "obs/anomaly.hpp"
#include "obs/causal.hpp"
#include "obs/checkpoints.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/event_json.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/report.hpp"
#include "obs/ring.hpp"
#include "obs/speedup.hpp"
#include "obs/stream.hpp"
#include "parallel/cellular_parallel.hpp"
#include "parallel/distributed_island.hpp"
#include "parallel/hierarchical.hpp"
#include "parallel/hybrid.hpp"
#include "parallel/island.hpp"
#include "parallel/master_slave.hpp"
#include "parallel/migration.hpp"
#include "parallel/specialized_island.hpp"
#include "parallel/topology.hpp"
#include "problems/binary.hpp"
#include "problems/functions.hpp"
#include "problems/graph.hpp"
#include "problems/joinorder.hpp"
#include "problems/multiobjective.hpp"
#include "problems/npcomplete.hpp"
#include "problems/scheduling.hpp"
#include "problems/tsp.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "theory/models.hpp"
#include "workloads/airfoil.hpp"
#include "workloads/cameras.hpp"
#include "workloads/digits.hpp"
#include "workloads/doppler.hpp"
#include "workloads/images.hpp"
#include "workloads/reactor.hpp"
#include "workloads/stock.hpp"
